"""Message relays: forwarding PBIO streams without decoding them.

The paper closes with the goal of pushing "selected message operations
... `into' the communication co-processors" (Section 5).  The enabling
property is NDR + self-description: an intermediary can route, replicate
and *filter* messages while treating every record as opaque bytes plus a
16-byte header — it never converts, and filters it does apply read only
the fields they name (via :mod:`repro.core.filters`), straight from the
sender's natural representation.

A :class:`Relay` therefore has no machine of its own in any meaningful
sense: it observes format announcements (to keep its registry and to
replay them to late-attached downstreams) and forwards data messages
verbatim.  Filters are per-downstream, so one stream fans out into
differently-filtered substreams — the derived-event-channel pattern.

Fan-out is failure-isolated: a downstream whose transport raises
:class:`~repro.net.transport.TransportError` never stalls the stream for
its siblings.  Errors are counted per downstream (``send_errors``) and
after ``quarantine_after`` *consecutive* failures the downstream is
quarantined.  With a :class:`~repro.net.health.ProbePolicy` the
quarantine is a *self-healing* state machine —

    attached → active ⇄ quarantined → probing → active | evicted

— driven by :meth:`Relay.heal`: quarantined downstreams are probed with
exponential-backoff ``MSG_PING`` frames; a pong reactivates them (with
the full announcement replay, so no format state is ever lost) and a
peer silent past the eviction deadline is removed for good
(``relay.reactivated`` / ``relay.evicted`` in :attr:`Relay.metrics`).
Without a policy, recovery stays manual via :meth:`Relay.reactivate`,
which also still works as an operator override.

Each downstream may also carry a bounded overflow queue
(:class:`~repro.net.health.BoundedSendQueue`) selected by the relay's
``overflow`` policy — ``block`` (the seed behaviour: a full peer queue
counts toward quarantine), ``drop_new``, ``drop_old`` or ``coalesce``
(keep the newest record per ``(context, format)`` stream) — so a slow
consumer degrades the way the operator chose instead of only the one
way the transport knows.

Async downstreams compose directly: an
:class:`~repro.net.aio.AsyncSocketTransport`'s ``send``/``send_many``
are synchronous bounded-queue enqueues, so the fan-out loop never
blocks on one peer, and a queue at capacity raises
:class:`~repro.net.transport.WriteQueueFull` — a ``TransportError`` —
so the *same* consecutive-failure quarantine that handles broken links
doubles as slow-consumer eviction (the paper's co-processor must shed,
not stall).  :attr:`_Downstream.write_queue_depth` exposes the live
queue depth for monitoring.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable

from repro.abi import X86_64
from repro.core import encoder as enc
from repro.core.context import IOContext
from repro.core.errors import PbioError, TokenResolutionError
from repro.core.filters import RecordFilter
from repro.core.runtime import ConverterCache, DownstreamStats, Metrics
from repro.core.safety import DEFAULT_LIMITS, DecodeLimits
from repro.net.health import OVERFLOW_POLICIES, BoundedSendQueue, ProbePolicy, send_goodbye
from repro.net.transport import Transport, TransportError, WriteQueueFull

#: Downstream lifecycle states (the quarantine state machine).
ACTIVE = "active"
QUARANTINED = "quarantined"
PROBING = "probing"
EVICTED = "evicted"


class Downstream:
    """The opaque handle :meth:`Relay.attach` returns.

    Callers read :attr:`stats` / :attr:`state` / :attr:`quarantined` and
    hand the object back to :meth:`Relay.detach` / :meth:`Relay.reactivate`;
    the mutable machinery inside is the relay's business.
    """

    def __init__(
        self,
        transport: Transport,
        flt: RecordFilter | None,
        queue: BoundedSendQueue | None = None,
    ):
        self.transport = transport
        self.filter = flt
        self.metrics = Metrics()
        self.stats = DownstreamStats(self.metrics)
        self.consecutive_errors = 0
        self.state = ACTIVE
        self.send_queue = queue
        self.quarantined_at: float | None = None
        self.probe_attempts = 0
        self.next_probe_at: float | None = None
        #: Per-stream cumulative ack cursors harvested off this peer's
        #: back-channel (durable delivery, docs/robustness.md §11).
        self.ack_cursors: dict[tuple[int, int], int] = {}

    @property
    def quarantined(self) -> bool:
        """True while the downstream is out of the fan-out (quarantined
        or probing).  Read-only — state changes go through the relay."""
        return self.state in (QUARANTINED, PROBING)

    @property
    def write_queue_depth(self) -> int:
        """Bytes queued toward this downstream: the transport's own
        queue (async transports) plus the relay-side overflow queue."""
        depth = getattr(self.transport, "write_queue_depth", 0)
        if self.send_queue is not None:
            depth += self.send_queue.queued_bytes
        return depth


#: Back-compat alias: pre-PR 7 code (and its tests) knew the private name.
_Downstream = Downstream


class Relay:
    """Store-and-forward hub for PBIO message streams.

    Typical use::

        relay = Relay()
        relay.attach(link_to_viz)                       # everything
        relay.attach(link_to_alarms,
                     format_name="telemetry",
                     filter_expr="temperature > 700.0") # hot records only
        for message in upstream:
            relay.forward(message)

    ``quarantine_after`` is the number of *consecutive* send failures
    that detaches a downstream (any success resets the count);
    ``on_error`` is called as ``on_error(downstream, exc)`` after each
    failed send, before any quarantine decision.

    ``probe_policy`` arms automatic quarantine recovery: call
    :meth:`heal` periodically (e.g. once per pump iteration) and
    quarantined downstreams are probed, reactivated on a pong with the
    announcements they missed, or evicted at the policy's deadline.
    ``overflow`` selects the slow-consumer policy (one of
    ``block | drop_new | drop_old | coalesce``); anything but ``block``
    gives each downstream a :class:`BoundedSendQueue` of
    ``max_queue_bytes`` that absorbs :class:`WriteQueueFull` rejections
    instead of counting them toward quarantine.  ``clock`` is injectable
    (:class:`repro.net.timing.VirtualClock`) so the whole state machine
    can run in virtual time.

    Durable streams (docs/robustness.md §11) pass through untouched:
    ``MSG_DATA_SEQ`` frames forward verbatim and are remembered in a
    bounded per-stream replay window (``replay_window`` frames) that is
    re-sent, above each peer's acked cursor, on reactivation.  ``MSG_ACK``
    frames harvested off downstream back-channels in :meth:`heal` advance
    per-downstream cursors, and their min-cursor aggregate is emitted to
    ``ack_upstream`` (a frame sink toward the publisher, e.g. the
    upstream transport's ``send``) so WAL compaction upstream only ever
    covers what every acking downstream has confirmed.
    """

    def __init__(
        self,
        *,
        cache: ConverterCache | None = None,
        quarantine_after: int = 3,
        on_error: Callable[[Downstream, TransportError], None] | None = None,
        limits: DecodeLimits | None = DEFAULT_LIMITS,
        format_service=None,
        probe_policy: ProbePolicy | None = None,
        overflow: str = "block",
        max_queue_bytes: int = 1 << 20,
        clock: Callable[[], float] = time.monotonic,
        ack_upstream: Callable[[bytes], None] | None = None,
        replay_window: int = 256,
    ) -> None:
        if quarantine_after < 1:
            raise ValueError("quarantine_after must be >= 1")
        if overflow not in OVERFLOW_POLICIES:
            raise ValueError(
                f"unknown overflow policy {overflow!r}; pick one of {OVERFLOW_POLICIES}"
            )
        # The relay's context exists only to hold the format registry for
        # filter compilation; records are never decoded to its layouts.
        # A shared cache is accepted anyway so filter-free relays embedded
        # in larger topologies can participate in channel-wide sharing.
        # A format service lets the relay resolve token announcements for
        # its *own* registry (filters); forwarding never needs one.
        self.ctx = IOContext(
            X86_64, cache=cache, limits=limits, format_service=format_service
        )
        self.limits = limits
        self.quarantine_after = quarantine_after
        self.on_error = on_error
        self.probe_policy = probe_policy
        self.overflow = overflow
        self.max_queue_bytes = max_queue_bytes
        self._clock = clock
        self.metrics = Metrics()
        self._downstreams: list[Downstream] = []
        self._announcements: list[bytes] = []
        #: exact-bytes dedup for the list above: durable publishers
        #: re-announce on every backlog resend, and the replay list must
        #: not grow (nor downstreams be spammed) for meta already known
        self._seen_announcements: set[bytes] = set()
        self.messages_seen = 0
        self._ping_nonce = 0
        self._stopped = False
        #: Durable passthrough (docs/robustness.md §11): sequenced frames
        #: are remembered in a bounded per-stream window for replay on
        #: downstream reactivation, downstream ack cursors are harvested
        #: in heal(), and their min-cursor aggregate flows to
        #: ``ack_upstream`` (a frame sink toward the publisher).
        self.ack_upstream = ack_upstream
        if replay_window < 1:
            raise ValueError("replay_window must be >= 1")
        self.replay_window = replay_window
        self._replay: dict[tuple[int, int], deque[tuple[int, bytes]]] = {}
        self._upstream_acked: dict[tuple[int, int], int] = {}

    def attach(
        self,
        transport: Transport,
        *,
        format_name: str | None = None,
        filter_expr: str | None = None,
    ) -> Downstream:
        """Add a downstream link, replaying announcements it missed.

        Returns the opaque :class:`Downstream` handle accepted by
        :meth:`detach` and :meth:`reactivate`.
        """
        flt = None
        if filter_expr is not None:
            if format_name is None:
                raise ValueError("a filter requires format_name")
            flt = RecordFilter(self.ctx, format_name, filter_expr)
        queue = None
        if self.overflow != "block":
            queue = BoundedSendQueue(self.max_queue_bytes, self.overflow)
        downstream = Downstream(transport, flt, queue)
        self._downstreams.append(downstream)
        for announcement in self._announcements:
            self._send(downstream, announcement, "announcements")
        return downstream

    def detach(self, downstream: Downstream) -> None:
        """Remove a downstream entirely (it will not be forwarded again)."""
        self._downstreams.remove(downstream)
        downstream.state = EVICTED

    def reactivate(self, downstream: Downstream) -> None:
        """Clear a quarantine (e.g. after the link reconnected) and replay
        the announcements the downstream missed while detached.

        This is the manual override; with a ``probe_policy`` configured,
        :meth:`heal` calls the same transition automatically on a pong.
        """
        self._reactivate(downstream)

    def _reactivate(self, downstream: Downstream) -> None:
        downstream.state = ACTIVE
        downstream.consecutive_errors = 0
        downstream.quarantined_at = None
        downstream.probe_attempts = 0
        downstream.next_probe_at = None
        downstream.metrics.inc("reactivated")
        self.metrics.inc("relay.reactivated")
        for announcement in self._announcements:
            self._send(downstream, announcement, "announcements")
        self._replay_sequenced(downstream)

    def _replay_sequenced(self, downstream: Downstream) -> None:
        """Re-send windowed sequenced frames the peer has not acked.

        Runs after the announcement replay on reactivation, so the peer
        can decode what it receives; its dedup window absorbs anything
        that did arrive before the quarantine.  Frames that aged out of
        the bounded window are the publisher WAL's responsibility.
        """
        for key, window in self._replay.items():
            cursor = downstream.ack_cursors.get(key, 0)
            for seq, message in window:
                if seq <= cursor:
                    continue
                if downstream.filter is not None:
                    try:
                        if not downstream.filter.matches(enc.seq_to_data(message)[1]):
                            downstream.metrics.inc("filtered_out")
                            continue
                    except PbioError:
                        downstream.metrics.inc("filter_errors")
                        continue
                self._send(downstream, message, "replayed")
                self.metrics.inc("durable.replayed")

    @property
    def active_downstreams(self) -> list[Downstream]:
        return [d for d in self._downstreams if d.state == ACTIVE]

    def _quarantine(self, downstream: Downstream) -> None:
        downstream.state = QUARANTINED
        downstream.metrics.inc("detached")
        now = self._clock()
        downstream.quarantined_at = now
        downstream.probe_attempts = 0
        if self.probe_policy is not None:
            downstream.next_probe_at = now + self.probe_policy.delay(0)
        self.metrics.inc("relay.quarantined")

    def _count_failure(self, downstream: Downstream, exc: TransportError) -> None:
        downstream.metrics.inc("send_errors")
        downstream.consecutive_errors += 1
        if self.on_error is not None:
            self.on_error(downstream, exc)
        if downstream.consecutive_errors >= self.quarantine_after:
            self._quarantine(downstream)

    def _spill(self, downstream: Downstream, message: bytes, counter: str) -> None:
        """Queue a frame the transport would not take right now."""
        queue = downstream.send_queue
        if queue.push(message):
            downstream.metrics.inc("overflow_queued")
            downstream.metrics.inc(counter)
        else:
            downstream.metrics.inc("overflow_dropped")
            self.metrics.inc("relay.overflow_dropped")
        # The policy absorbed the pressure: a full-but-draining peer is a
        # slow consumer being managed, not a broken link.
        downstream.consecutive_errors = 0

    def _try_flush(self, downstream: Downstream) -> None:
        """Move queued overflow frames to the transport, best-effort."""
        queue = downstream.send_queue
        if queue is None or not len(queue):
            return
        try:
            flushed = queue.flush(downstream.transport)
        except WriteQueueFull:
            return  # peer still slow; frames stay queued
        except TransportError as exc:
            self._count_failure(downstream, exc)
            return
        if flushed:
            downstream.metrics.inc("overflow_flushed", flushed)
            downstream.consecutive_errors = 0

    def _send(self, downstream: Downstream, message: bytes, counter: str) -> None:
        """Send to one downstream, absorbing transport failures.

        One dead peer must never abort the fan-out loop: the error is
        counted, reported to ``on_error``, and — after ``quarantine_after``
        consecutive failures — the downstream is quarantined.  With a
        non-``block`` overflow policy, :class:`WriteQueueFull` spills the
        frame into the downstream's bounded queue instead (flushed as the
        peer drains); only genuine link failures count toward quarantine.
        """
        if downstream.state != ACTIVE:
            return
        queue = downstream.send_queue
        if queue is not None and len(queue):
            # A backlog exists: preserve order by queueing behind it,
            # then try to move the whole backlog forward.
            self._spill(downstream, message, counter)
            self._try_flush(downstream)
            return
        try:
            downstream.transport.send(message)
        except WriteQueueFull as exc:
            if queue is not None:
                self._spill(downstream, message, counter)
            else:
                self._count_failure(downstream, exc)
        except TransportError as exc:
            self._count_failure(downstream, exc)
        else:
            downstream.consecutive_errors = 0
            downstream.metrics.inc(counter)

    def forward(self, message: bytes, *, header=None) -> None:
        """Process one upstream message.

        Frames that are not PBIO messages, that exceed the relay's
        :class:`~repro.core.safety.DecodeLimits`, or whose header
        contradicts their actual length are *dropped* (counted as
        ``relay.rejected`` in :attr:`metrics`) rather than fanned out:
        an intermediary must not amplify damage to every downstream.

        ``header`` accepts the already-parsed header tuple when an
        upstream stage (a batch grouper, the fabric dispatcher) has
        sniffed this frame before — the PR 5 single-parse discipline.
        """
        if self._stopped:
            self.metrics.inc("relay.dropped_after_stop")
            return
        if header is None:
            header = enc.try_unpack_header(message)
        if header is None:
            self.metrics.inc("relay.rejected")
            return
        kind = header[0]
        if self.limits is not None and len(message) > self.limits.max_message_size:
            self.metrics.inc("relay.rejected")
            return
        if kind in (enc.MSG_PING, enc.MSG_PONG):
            # Link-level liveness frames are point-to-point: a one-way
            # fan-out hub neither answers nor propagates them (its own
            # downstream probing runs in heal(), on the back-channel).
            self.metrics.inc("relay.heartbeats_dropped")
            return
        if kind == enc.MSG_FORMAT:
            try:
                self.ctx.receive(message)  # absorb for filter compilation
            except PbioError:  # malformed meta: don't propagate it downstream
                self.metrics.inc("relay.rejected")
                return
            data = bytes(message)
            if data in self._seen_announcements:
                # Anyone attached since the first copy got it at attach
                # time; anyone attached before got the original forward.
                self.metrics.inc("relay.announcements_deduped")
                return
            self._seen_announcements.add(data)
            self._announcements.append(data)
            for downstream in self._downstreams:
                self._send(downstream, message, "announcements")
            return
        if kind == enc.MSG_FORMAT_TOKEN:
            # The relay's key property: tokens forward *verbatim* — meta
            # is never re-expanded in the middle of the network.  The
            # relay absorbs the token for its own registry if it can
            # (filters need it); an unresolvable token only degrades
            # filtering on that format, never forwarding.
            try:
                self.ctx.receive(message)
            except TokenResolutionError:
                self.metrics.inc("relay.unresolved_tokens")
            except PbioError:  # malformed/quota-busting token frame
                self.metrics.inc("relay.rejected")
                return
            data = bytes(message)
            if data in self._seen_announcements:
                self.metrics.inc("relay.announcements_deduped")
                return
            self._seen_announcements.add(data)
            self._announcements.append(data)
            for downstream in self._downstreams:
                self._send(downstream, message, "announcements")
            return
        if kind == enc.MSG_FORMAT_REQUEST:
            # Meta requests flow toward a *sender*; a one-way fan-out hub
            # has no route back, so the request is dropped (the requester
            # recovers by other means or times out holding).
            self.metrics.inc("relay.requests_dropped")
            return
        if kind == enc.MSG_ACK:
            # Acks are point-to-point control flowing *against* the
            # stream.  The relay harvests them off downstream
            # back-channels in heal(), where they can be attributed to a
            # peer; one arriving on the forward path has no owner.
            self.metrics.inc("relay.acks_dropped")
            return
        if kind == enc.MSG_DATA_SEQ:
            # Durable passthrough: the sequence forwards *verbatim* (the
            # subscriber's dedup window needs the publisher's numbering,
            # not ours) and the frame is remembered in the bounded
            # replay window for downstream reactivation.
            try:
                cid, fid, _seq, _record = enc.parse_data_seq(message)
            except PbioError:
                self.metrics.inc("relay.rejected")
                return
            self.messages_seen += 1
            key = (cid, fid)
            window = self._replay.get(key)
            if window is None:
                window = self._replay[key] = deque(maxlen=self.replay_window)
            data = bytes(message)
            window.append((_seq, data))
            stripped = None  # filters read the plain data form, built lazily
            for downstream in self._downstreams:
                if downstream.quarantined:
                    continue
                if downstream.filter is not None:
                    if stripped is None:
                        stripped = enc.seq_to_data(data)[1]
                    try:
                        matched = downstream.filter.matches(stripped)
                    except PbioError:
                        downstream.metrics.inc("filter_errors")
                        continue
                    if not matched:
                        downstream.metrics.inc("filtered_out")
                        continue
                self._send(downstream, data, "forwarded")
            return
        if header[3] != len(message) - enc.HEADER_SIZE:
            self.metrics.inc("relay.rejected")  # torn/padded data frame
            return
        self.messages_seen += 1
        for downstream in self._downstreams:
            if downstream.quarantined:
                continue
            if downstream.filter is not None:
                try:
                    matched = downstream.filter.matches(message)
                except PbioError:
                    # e.g. the announcement this record needs never made it
                    # here: this downstream cannot evaluate its predicate,
                    # so the record is withheld from it, not from siblings.
                    downstream.metrics.inc("filter_errors")
                    continue
                if not matched:
                    downstream.metrics.inc("filtered_out")
                    continue
            self._send(downstream, message, "forwarded")  # verbatim: zero re-encoding

    def forward_batch(self, messages, headers=None) -> None:
        """Forward a burst of upstream messages, vectoring where possible.

        Runs of valid data frames are fanned out with one
        ``send_many`` per downstream (one vectored syscall on a socket
        link) instead of one ``send`` per message.  Control frames and
        rejects take the scalar :meth:`forward` path in arrival order,
        so announcement-before-data ordering is preserved exactly.

        ``headers`` optionally carries the parsed header tuple for each
        message (parallel to ``messages``, ``None`` entries allowed).
        Batches that were already grouped by an upstream sniffer — the
        fabric dispatcher routes on ``(cid, fid)`` — thus flow through
        without a second header parse, and the headers travel on into
        each downstream's filter evaluation.
        """
        if self._stopped:
            self.metrics.inc("relay.dropped_after_stop", len(list(messages)))
            return
        # messages may be any iterable; pair lazily when unsniffed
        pairs = zip(messages, headers) if headers is not None else ((m, None) for m in messages)
        run: list[tuple[bytes, tuple]] = []
        for message, header in pairs:
            if header is None:
                header = enc.try_unpack_header(message)
            if header is not None and header[0] == enc.MSG_DATA:
                if (
                    self.limits is not None
                    and len(message) > self.limits.max_message_size
                ) or header[3] != len(message) - enc.HEADER_SIZE:
                    self.metrics.inc("relay.rejected")
                    continue
                self.messages_seen += 1
                run.append((message, header))
                continue
            if run:
                self._flush_data_run(run)
                run = []
            self.forward(message, header=header)
        if run:
            self._flush_data_run(run)

    def _flush_data_run(self, run: list[tuple[bytes, tuple]]) -> None:
        """Fan one run of validated data frames to every live downstream."""
        for downstream in self._downstreams:
            if downstream.quarantined:
                continue
            if downstream.filter is not None:
                batch = []
                for message, header in run:
                    try:
                        matched = downstream.filter.matches(message, header=header)
                    except PbioError:
                        downstream.metrics.inc("filter_errors")
                        continue
                    if not matched:
                        downstream.metrics.inc("filtered_out")
                        continue
                    batch.append(message)
            else:
                batch = [message for message, _header in run]
            if batch:
                self._send_many(downstream, batch, "forwarded")

    def _send_many(self, downstream: Downstream, batch: list[bytes], counter: str) -> None:
        """:meth:`_send` for a whole run: one vectored transport call,
        same failure counting and quarantine policy."""
        if downstream.state != ACTIVE:
            return
        queue = downstream.send_queue
        if queue is not None and len(queue):
            for message in batch:  # backlog: keep order through the queue
                self._send(downstream, message, counter)
            return
        send_many = getattr(downstream.transport, "send_many", None)
        try:
            if send_many is not None:
                send_many(batch)
            else:  # duck-typed link predating the batch API
                for message in batch:
                    downstream.transport.send(message)
        except WriteQueueFull as exc:
            if queue is not None:
                # The async queue admits bursts all-or-nothing, so the
                # whole batch is still ours to spill, frame by frame.
                for message in batch:
                    self._spill(downstream, message, counter)
            else:
                self._count_failure(downstream, exc)
        except TransportError as exc:
            self._count_failure(downstream, exc)
        else:
            downstream.consecutive_errors = 0
            downstream.metrics.inc(counter, len(batch))

    def pump(self, upstream: Transport, count: int) -> None:
        """Forward ``count`` messages from an upstream transport."""
        for _ in range(count):
            self.forward(upstream.recv())

    def pump_batch(self, upstream: Transport, max_frames: int = 0) -> int:
        """Drain one burst from ``upstream`` (``recv_many``) and forward
        it as a batch; returns the number of frames moved."""
        recv_many = getattr(upstream, "recv_many", None)
        frames = recv_many(max_frames) if recv_many is not None else [upstream.recv()]
        self.forward_batch(frames)
        return len(frames)

    # -- self-healing ---------------------------------------------------------

    def heal(self, now: float | None = None) -> None:
        """Drive the quarantine-recovery state machine one step.

        Cheap enough to call once per pump iteration: flushes overflow
        backlogs on active downstreams, then — when a ``probe_policy``
        is armed — harvests probe answers from quarantined downstreams
        (a ``MSG_PONG`` reactivates, with the full announcement replay),
        sends the next backoff-scheduled probe where due, and evicts
        peers silent past the policy's deadline.
        """
        if now is None:
            now = self._clock()
        policy = self.probe_policy
        for downstream in list(self._downstreams):
            if downstream.state == ACTIVE:
                # Ack frames ride the same back-channel the probe pump
                # uses: harvesting here is what keeps downstream cursors
                # (and the upstream min-cursor aggregate) current.
                self._harvest_pong(downstream)
                self._try_flush(downstream)
                continue
            if policy is None or downstream.state == EVICTED:
                continue
            if self._harvest_pong(downstream):
                self._reactivate(downstream)
                self._try_flush(downstream)
                continue
            entered = downstream.quarantined_at
            if entered is not None and now - entered >= policy.eviction_deadline_s:
                self._evict(downstream)
                continue
            if downstream.next_probe_at is not None and now >= downstream.next_probe_at:
                self._probe(downstream, now)
        self._aggregate_acks()

    def _harvest_pong(self, downstream: Downstream) -> bool:
        """Drain the downstream's back-channel; True on proof of life.

        Pongs answer probes; ``MSG_ACK`` frames both prove life *and*
        advance the downstream's per-stream ack cursors (a peer that
        acks is necessarily receiving).  Anything else a peer sends
        (stray requests, garbage) is not proof it can receive.
        """
        alive = False
        while True:
            try:
                frame = downstream.transport.poll_recv()
            except TransportError:
                return alive  # a torn back-channel is just more silence
            if frame is None:
                return alive
            header = enc.try_unpack_header(frame)
            if header is None:
                continue
            if header[0] == enc.MSG_PONG:
                alive = True
            elif header[0] == enc.MSG_ACK:
                try:
                    cid, fid, cursor, _nb, _bits = enc.parse_ack(frame)
                except PbioError:
                    continue
                alive = True
                key = (cid, fid)
                if cursor > downstream.ack_cursors.get(key, 0):
                    downstream.ack_cursors[key] = cursor
                self.metrics.inc("durable.acks_received")

    def _aggregate_acks(self) -> None:
        """Push the min-cursor over active downstreams toward upstream.

        For each stream, the relay may only ack what *every* acking
        downstream has confirmed — the minimum cursor — because an
        upstream ack licenses WAL compaction there.  Downstreams that
        have never acked a stream (plain, non-durable subscribers) do
        not participate; a relay fanning out only to such peers simply
        never acks upstream, which is the conservative truth.
        """
        if self.ack_upstream is None:
            return
        active = [d for d in self._downstreams if d.state == ACTIVE]
        if not active:
            return
        keys: set[tuple[int, int]] = set()
        for downstream in active:
            keys.update(downstream.ack_cursors)
        for key in keys:
            cursors = [
                d.ack_cursors[key] for d in active if key in d.ack_cursors
            ]
            agg = min(cursors)
            if agg <= self._upstream_acked.get(key, 0):
                continue
            self._upstream_acked[key] = agg
            try:
                self.ack_upstream(enc.encode_ack(key[0], key[1], agg))
            except Exception:
                self.metrics.inc("durable.ack_send_errors")
            else:
                self.metrics.inc("durable.acks_sent")

    def _probe(self, downstream: Downstream, now: float) -> None:
        self._ping_nonce += 1
        downstream.state = PROBING
        try:
            downstream.transport.send(enc.encode_ping(self._ping_nonce))
        except TransportError:
            pass  # an unsendable probe is an unanswered probe
        downstream.metrics.inc("probes_sent")
        self.metrics.inc("relay.probes_sent")
        downstream.probe_attempts += 1
        downstream.next_probe_at = now + self.probe_policy.delay(downstream.probe_attempts)

    def _evict(self, downstream: Downstream) -> None:
        downstream.state = EVICTED
        self._downstreams.remove(downstream)
        downstream.metrics.inc("evicted")
        self.metrics.inc("relay.evicted")

    # -- graceful drain -------------------------------------------------------

    def drain_and_stop(self, deadline_s: float = 5.0) -> bool:
        """Stop forwarding, flush overflow backlogs, say goodbye.

        New upstream messages are dropped (counted as
        ``relay.dropped_after_stop``) from the moment this is called.
        Overflow queues are flushed until empty or ``deadline_s`` of
        virtual/wall time passes; every still-attached downstream then
        gets a goodbye ping (nonce 0) so peers re-dial promptly instead
        of timing out.  Returns True when every queue flushed fully.
        """
        self._stopped = True
        deadline = self._clock() + deadline_s
        flushed_all = False
        while self._clock() <= deadline:
            progress = 0
            remaining = 0
            for downstream in self._downstreams:
                queue = downstream.send_queue
                if downstream.state != ACTIVE or queue is None:
                    continue
                before = len(queue)
                self._try_flush(downstream)
                progress += before - len(queue)
                if downstream.state == ACTIVE:
                    remaining += len(queue)
            if remaining == 0:
                flushed_all = True
                break
            if progress == 0:
                break  # nothing is draining; waiting longer cannot help
        for downstream in self._downstreams:
            if downstream.state != EVICTED and send_goodbye(downstream.transport):
                downstream.metrics.inc("goodbyes_sent")
        self.metrics.inc("relay.drained")
        return flushed_all
