"""Message relays: forwarding PBIO streams without decoding them.

The paper closes with the goal of pushing "selected message operations
... `into' the communication co-processors" (Section 5).  The enabling
property is NDR + self-description: an intermediary can route, replicate
and *filter* messages while treating every record as opaque bytes plus a
16-byte header — it never converts, and filters it does apply read only
the fields they name (via :mod:`repro.core.filters`), straight from the
sender's natural representation.

A :class:`Relay` therefore has no machine of its own in any meaningful
sense: it observes format announcements (to keep its registry and to
replay them to late-attached downstreams) and forwards data messages
verbatim.  Filters are per-downstream, so one stream fans out into
differently-filtered substreams — the derived-event-channel pattern.
"""

from __future__ import annotations

from repro.abi import X86_64
from repro.core import encoder as enc
from repro.core.context import IOContext
from repro.core.filters import RecordFilter
from repro.core.runtime import ConverterCache, DownstreamStats, Metrics
from repro.net.transport import Transport


class _Downstream:
    def __init__(self, transport: Transport, flt: RecordFilter | None):
        self.transport = transport
        self.filter = flt
        self.metrics = Metrics()
        self.stats = DownstreamStats(self.metrics)


class Relay:
    """Store-and-forward hub for PBIO message streams.

    Typical use::

        relay = Relay()
        relay.attach(link_to_viz)                       # everything
        relay.attach(link_to_alarms,
                     format_name="telemetry",
                     filter_expr="temperature > 700.0") # hot records only
        for message in upstream:
            relay.forward(message)
    """

    def __init__(self, *, cache: ConverterCache | None = None) -> None:
        # The relay's context exists only to hold the format registry for
        # filter compilation; records are never decoded to its layouts.
        # A shared cache is accepted anyway so filter-free relays embedded
        # in larger topologies can participate in channel-wide sharing.
        self.ctx = IOContext(X86_64, cache=cache)
        self._downstreams: list[_Downstream] = []
        self._announcements: list[bytes] = []
        self.messages_seen = 0

    def attach(
        self,
        transport: Transport,
        *,
        format_name: str | None = None,
        filter_expr: str | None = None,
    ) -> _Downstream:
        """Add a downstream link, replaying announcements it missed."""
        flt = None
        if filter_expr is not None:
            if format_name is None:
                raise ValueError("a filter requires format_name")
            flt = RecordFilter(self.ctx, format_name, filter_expr)
        downstream = _Downstream(transport, flt)
        for announcement in self._announcements:
            transport.send(announcement)
            downstream.metrics.inc("announcements")
        self._downstreams.append(downstream)
        return downstream

    def forward(self, message: bytes) -> None:
        """Process one upstream message."""
        if enc.try_message_type(message) == enc.MSG_FORMAT:
            self.ctx.receive(message)  # absorb for filter compilation
            self._announcements.append(bytes(message))
            for downstream in self._downstreams:
                downstream.transport.send(message)
                downstream.metrics.inc("announcements")
            return
        self.messages_seen += 1
        for downstream in self._downstreams:
            if downstream.filter is not None and not downstream.filter.matches(message):
                downstream.metrics.inc("filtered_out")
                continue
            downstream.transport.send(message)  # verbatim: zero re-encoding
            downstream.metrics.inc("forwarded")

    def pump(self, upstream: Transport, count: int) -> None:
        """Forward ``count`` messages from an upstream transport."""
        for _ in range(count):
            self.forward(upstream.recv())
