"""Message relays: forwarding PBIO streams without decoding them.

The paper closes with the goal of pushing "selected message operations
... `into' the communication co-processors" (Section 5).  The enabling
property is NDR + self-description: an intermediary can route, replicate
and *filter* messages while treating every record as opaque bytes plus a
16-byte header — it never converts, and filters it does apply read only
the fields they name (via :mod:`repro.core.filters`), straight from the
sender's natural representation.

A :class:`Relay` therefore has no machine of its own in any meaningful
sense: it observes format announcements (to keep its registry and to
replay them to late-attached downstreams) and forwards data messages
verbatim.  Filters are per-downstream, so one stream fans out into
differently-filtered substreams — the derived-event-channel pattern.

Fan-out is failure-isolated: a downstream whose transport raises
:class:`~repro.net.transport.TransportError` never stalls the stream for
its siblings.  Errors are counted per downstream (``send_errors``) and
after ``quarantine_after`` *consecutive* failures the downstream is
quarantined — skipped until :meth:`Relay.reactivate` brings it back with
a fresh announcement replay (``detached`` marks the transition).

Async downstreams compose directly: an
:class:`~repro.net.aio.AsyncSocketTransport`'s ``send``/``send_many``
are synchronous bounded-queue enqueues, so the fan-out loop never
blocks on one peer, and a queue at capacity raises
:class:`~repro.net.transport.WriteQueueFull` — a ``TransportError`` —
so the *same* consecutive-failure quarantine that handles broken links
doubles as slow-consumer eviction (the paper's co-processor must shed,
not stall).  :attr:`_Downstream.write_queue_depth` exposes the live
queue depth for monitoring.
"""

from __future__ import annotations

from typing import Callable

from repro.abi import X86_64
from repro.core import encoder as enc
from repro.core.context import IOContext
from repro.core.errors import PbioError, TokenResolutionError
from repro.core.filters import RecordFilter
from repro.core.runtime import ConverterCache, DownstreamStats, Metrics
from repro.core.safety import DEFAULT_LIMITS, DecodeLimits
from repro.net.transport import Transport, TransportError


class _Downstream:
    def __init__(self, transport: Transport, flt: RecordFilter | None):
        self.transport = transport
        self.filter = flt
        self.metrics = Metrics()
        self.stats = DownstreamStats(self.metrics)
        self.consecutive_errors = 0
        self.quarantined = False

    @property
    def write_queue_depth(self) -> int:
        """Bytes queued toward this downstream (async transports only;
        0 for blocking links, which have no queue to measure)."""
        return getattr(self.transport, "write_queue_depth", 0)


class Relay:
    """Store-and-forward hub for PBIO message streams.

    Typical use::

        relay = Relay()
        relay.attach(link_to_viz)                       # everything
        relay.attach(link_to_alarms,
                     format_name="telemetry",
                     filter_expr="temperature > 700.0") # hot records only
        for message in upstream:
            relay.forward(message)

    ``quarantine_after`` is the number of *consecutive* send failures
    that detaches a downstream (any success resets the count);
    ``on_error`` is called as ``on_error(downstream, exc)`` after each
    failed send, before any quarantine decision.
    """

    def __init__(
        self,
        *,
        cache: ConverterCache | None = None,
        quarantine_after: int = 3,
        on_error: Callable[[_Downstream, TransportError], None] | None = None,
        limits: DecodeLimits | None = DEFAULT_LIMITS,
        format_service=None,
    ) -> None:
        if quarantine_after < 1:
            raise ValueError("quarantine_after must be >= 1")
        # The relay's context exists only to hold the format registry for
        # filter compilation; records are never decoded to its layouts.
        # A shared cache is accepted anyway so filter-free relays embedded
        # in larger topologies can participate in channel-wide sharing.
        # A format service lets the relay resolve token announcements for
        # its *own* registry (filters); forwarding never needs one.
        self.ctx = IOContext(
            X86_64, cache=cache, limits=limits, format_service=format_service
        )
        self.limits = limits
        self.quarantine_after = quarantine_after
        self.on_error = on_error
        self.metrics = Metrics()
        self._downstreams: list[_Downstream] = []
        self._announcements: list[bytes] = []
        self.messages_seen = 0

    def attach(
        self,
        transport: Transport,
        *,
        format_name: str | None = None,
        filter_expr: str | None = None,
    ) -> _Downstream:
        """Add a downstream link, replaying announcements it missed."""
        flt = None
        if filter_expr is not None:
            if format_name is None:
                raise ValueError("a filter requires format_name")
            flt = RecordFilter(self.ctx, format_name, filter_expr)
        downstream = _Downstream(transport, flt)
        self._downstreams.append(downstream)
        for announcement in self._announcements:
            self._send(downstream, announcement, "announcements")
        return downstream

    def detach(self, downstream: _Downstream) -> None:
        """Remove a downstream entirely (it will not be forwarded again)."""
        self._downstreams.remove(downstream)

    def reactivate(self, downstream: _Downstream) -> None:
        """Clear a quarantine (e.g. after the link reconnected) and replay
        the announcements the downstream missed while detached."""
        downstream.quarantined = False
        downstream.consecutive_errors = 0
        for announcement in self._announcements:
            self._send(downstream, announcement, "announcements")

    @property
    def active_downstreams(self) -> list[_Downstream]:
        return [d for d in self._downstreams if not d.quarantined]

    def _send(self, downstream: _Downstream, message: bytes, counter: str) -> None:
        """Send to one downstream, absorbing transport failures.

        One dead peer must never abort the fan-out loop: the error is
        counted, reported to ``on_error``, and — after ``quarantine_after``
        consecutive failures — the downstream is quarantined.
        """
        if downstream.quarantined:
            return
        try:
            downstream.transport.send(message)
        except TransportError as exc:
            downstream.metrics.inc("send_errors")
            downstream.consecutive_errors += 1
            if self.on_error is not None:
                self.on_error(downstream, exc)
            if downstream.consecutive_errors >= self.quarantine_after:
                downstream.quarantined = True
                downstream.metrics.inc("detached")
        else:
            downstream.consecutive_errors = 0
            downstream.metrics.inc(counter)

    def forward(self, message: bytes) -> None:
        """Process one upstream message.

        Frames that are not PBIO messages, that exceed the relay's
        :class:`~repro.core.safety.DecodeLimits`, or whose header
        contradicts their actual length are *dropped* (counted as
        ``relay.rejected`` in :attr:`metrics`) rather than fanned out:
        an intermediary must not amplify damage to every downstream.
        """
        header = enc.try_unpack_header(message)
        if header is None:
            self.metrics.inc("relay.rejected")
            return
        kind = header[0]
        if self.limits is not None and len(message) > self.limits.max_message_size:
            self.metrics.inc("relay.rejected")
            return
        if kind == enc.MSG_FORMAT:
            try:
                self.ctx.receive(message)  # absorb for filter compilation
            except PbioError:  # malformed meta: don't propagate it downstream
                self.metrics.inc("relay.rejected")
                return
            self._announcements.append(bytes(message))
            for downstream in self._downstreams:
                self._send(downstream, message, "announcements")
            return
        if kind == enc.MSG_FORMAT_TOKEN:
            # The relay's key property: tokens forward *verbatim* — meta
            # is never re-expanded in the middle of the network.  The
            # relay absorbs the token for its own registry if it can
            # (filters need it); an unresolvable token only degrades
            # filtering on that format, never forwarding.
            try:
                self.ctx.receive(message)
            except TokenResolutionError:
                self.metrics.inc("relay.unresolved_tokens")
            except PbioError:  # malformed/quota-busting token frame
                self.metrics.inc("relay.rejected")
                return
            self._announcements.append(bytes(message))
            for downstream in self._downstreams:
                self._send(downstream, message, "announcements")
            return
        if kind == enc.MSG_FORMAT_REQUEST:
            # Meta requests flow toward a *sender*; a one-way fan-out hub
            # has no route back, so the request is dropped (the requester
            # recovers by other means or times out holding).
            self.metrics.inc("relay.requests_dropped")
            return
        if header[3] != len(message) - enc.HEADER_SIZE:
            self.metrics.inc("relay.rejected")  # torn/padded data frame
            return
        self.messages_seen += 1
        for downstream in self._downstreams:
            if downstream.quarantined:
                continue
            if downstream.filter is not None:
                try:
                    matched = downstream.filter.matches(message)
                except PbioError:
                    # e.g. the announcement this record needs never made it
                    # here: this downstream cannot evaluate its predicate,
                    # so the record is withheld from it, not from siblings.
                    downstream.metrics.inc("filter_errors")
                    continue
                if not matched:
                    downstream.metrics.inc("filtered_out")
                    continue
            self._send(downstream, message, "forwarded")  # verbatim: zero re-encoding

    def forward_batch(self, messages) -> None:
        """Forward a burst of upstream messages, vectoring where possible.

        Runs of valid data frames are fanned out with one
        ``send_many`` per downstream (one vectored syscall on a socket
        link) instead of one ``send`` per message.  Control frames and
        rejects take the scalar :meth:`forward` path in arrival order,
        so announcement-before-data ordering is preserved exactly.
        """
        run: list[bytes] = []
        for message in messages:
            header = enc.try_unpack_header(message)
            if header is not None and header[0] == enc.MSG_DATA:
                if (
                    self.limits is not None
                    and len(message) > self.limits.max_message_size
                ) or header[3] != len(message) - enc.HEADER_SIZE:
                    self.metrics.inc("relay.rejected")
                    continue
                self.messages_seen += 1
                run.append(message)
                continue
            if run:
                self._flush_data_run(run)
                run = []
            self.forward(message)
        if run:
            self._flush_data_run(run)

    def _flush_data_run(self, run: list[bytes]) -> None:
        """Fan one run of validated data frames to every live downstream."""
        for downstream in self._downstreams:
            if downstream.quarantined:
                continue
            if downstream.filter is not None:
                batch = []
                for message in run:
                    try:
                        matched = downstream.filter.matches(message)
                    except PbioError:
                        downstream.metrics.inc("filter_errors")
                        continue
                    if not matched:
                        downstream.metrics.inc("filtered_out")
                        continue
                    batch.append(message)
            else:
                batch = run
            if batch:
                self._send_many(downstream, batch, "forwarded")

    def _send_many(self, downstream: _Downstream, batch: list[bytes], counter: str) -> None:
        """:meth:`_send` for a whole run: one vectored transport call,
        same failure counting and quarantine policy."""
        if downstream.quarantined:
            return
        send_many = getattr(downstream.transport, "send_many", None)
        try:
            if send_many is not None:
                send_many(batch)
            else:  # duck-typed link predating the batch API
                for message in batch:
                    downstream.transport.send(message)
        except TransportError as exc:
            downstream.metrics.inc("send_errors")
            downstream.consecutive_errors += 1
            if self.on_error is not None:
                self.on_error(downstream, exc)
            if downstream.consecutive_errors >= self.quarantine_after:
                downstream.quarantined = True
                downstream.metrics.inc("detached")
        else:
            downstream.consecutive_errors = 0
            downstream.metrics.inc(counter, len(batch))

    def pump(self, upstream: Transport, count: int) -> None:
        """Forward ``count`` messages from an upstream transport."""
        for _ in range(count):
            self.forward(upstream.recv())

    def pump_batch(self, upstream: Transport, max_frames: int = 0) -> int:
        """Drain one burst from ``upstream`` (``recv_many``) and forward
        it as a batch; returns the number of frames moved."""
        recv_many = getattr(upstream, "recv_many", None)
        frames = recv_many(max_frames) if recv_many is not None else [upstream.recv()]
        self.forward_batch(frames)
        return len(frames)
