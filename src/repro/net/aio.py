"""Async event-loop serving core: one process, thousands of connections.

Every serve loop that predates this module was blocking and
one-connection-at-a-time or thread-per-connection.  This module is the
refactor that closes that gap: a readiness-driven transport plus a
single-process acceptor that multiplexes every connection on one
``asyncio`` event loop, with pluggable per-connection handlers adapting
the existing protocol engines (format server, RPC, relay, event
channel) unchanged.

Design rules (docs/async.md):

* **Sends are synchronous enqueues.**  :meth:`AsyncSocketTransport.send`
  never awaits: it appends the length prefix and payload to a *bounded*
  per-connection write queue drained by one writer task with vectored
  ``sendmsg``.  Every existing send-side protocol layer — the
  announcement :class:`~repro.core.negotiation.Announcer` and
  :class:`~repro.core.negotiation.InboundNegotiator` back-channel, the
  :class:`~repro.net.relay.Relay` fan-out, the
  :class:`~repro.net.faults.FaultInjectingTransport` chaos wrapper —
  therefore composes with async transports without modification.  Sends
  are additionally legal from *any* thread (a blocking publisher fanning
  an :class:`~repro.net.channel.EventChannel` to wire taps): the queue
  is lock-guarded and foreign threads wake the loop via
  ``call_soon_threadsafe``.
* **Backpressure is explicit.**  A full queue raises
  :class:`~repro.net.transport.WriteQueueFull` (a ``TransportError``, so
  the relay's quarantine machinery evicts slow consumers); handlers call
  ``await transport.drain()`` between bursts, which pauses their reads
  until the peer has absorbed what it was sent.
  :attr:`AsyncSocketTransport.write_queue_depth` is the live gauge.
* **Receives reuse the PR 5 framer.**  The buffered
  :class:`~repro.net.transport.FrameBuffer` is shared with
  :class:`~repro.net.sockets.SocketTransport`; here it is fed by a
  persistent reader pump — the fd stays registered with the loop, the
  readiness callback reads and parses inline, and a handler's ``recv``
  wakes only when complete frames are ready.  Read-ahead is bounded
  (``max_read_buffer``); past the bound the pump unregisters and TCP
  flow control pushes back on the peer.
* **The synchronous API is untouched.**  ``SocketTransport``, the
  blocking ``serve`` loops and every existing test and bench keep
  working; :meth:`AsyncServer.run` is a plain blocking call (it *is* the
  event loop), so a sync ``main`` drives the async core with one line.
"""

from __future__ import annotations

import asyncio
import contextlib
import socket
import threading
from collections import deque
from typing import Awaitable, Callable

from repro.core.errors import PbioError
from repro.core.runtime import Metrics

from .health import BoundedSendQueue, send_goodbye
from .sockets import _IOV_MAX
from .transport import (
    MAX_FRAME,
    FrameBuffer,
    PeerClosedError,
    TransportError,
    TransportTimeout,
    WriteQueueFull,
    _LEN,
)

#: Default per-connection write-queue bound, in queued bytes (frames plus
#: their length prefixes).  1 MiB holds ~1000 records of the paper's 1 KB
#: workload — a slow consumer is visible long before memory is.
DEFAULT_MAX_WRITE_QUEUE = 1 << 20

#: Default per-connection read-ahead bound, in parsed-frame bytes.  The
#: reader pump keeps the fd registered and parses frames in the loop
#: callback even while the handler is busy; past this bound it
#: unregisters until the handler consumes the backlog (kernel-side TCP
#: flow control then pushes back on the peer).
DEFAULT_MAX_READ_BUFFER = 1 << 20

#: Consecutive protocol errors on one connection before a handler stops
#: humouring it (mirrors ``repro.fmtserv.server``'s serving policy).
MAX_CONSECUTIVE_PROTOCOL_ERRORS = 64

#: The per-connection handler contract: a coroutine taking the accepted
#: transport.  Returning (or raising) ends the connection.
ConnectionHandler = Callable[["AsyncSocketTransport"], Awaitable[None]]


def _pin(payload) -> bytes:
    """Queue an immutable copy: the caller may reuse its buffer."""
    return payload if type(payload) is bytes else bytes(payload)


class AsyncSocketTransport:
    """Length-prefix framed messages over a non-blocking TCP socket.

    The async counterpart of :class:`~repro.net.sockets.SocketTransport`:
    same framing, same buffered receive discipline (one shared
    :class:`FrameBuffer`), same vectored send path — but reads await
    readiness on the event loop and writes go through a bounded queue
    drained by a writer task, so thousands of these coexist in one
    process.

    Must be constructed inside a running event loop (the
    :class:`AsyncServer` accept loop does this for every connection).
    ``send``/``send_many``/``send_segments`` are synchronous enqueues;
    ``recv``/``recv_many``/``drain`` are coroutines.
    """

    def __init__(
        self,
        sock: socket.socket,
        *,
        max_write_queue: int = DEFAULT_MAX_WRITE_QUEUE,
        max_read_buffer: int = DEFAULT_MAX_READ_BUFFER,
        overflow: str = "block",
        metrics: Metrics | None = None,
    ):
        self._sock = sock
        sock.setblocking(False)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # not TCP (e.g. a socketpair in tests)
            pass
        self._loop = asyncio.get_running_loop()
        self.max_write_queue = max_write_queue
        self.max_read_buffer = max_read_buffer
        if overflow != "block":
            # A full write queue spills frames into a BoundedSendQueue
            # under the chosen policy instead of raising WriteQueueFull;
            # spilled frames are promoted back as the kernel drains.
            self._wover = BoundedSendQueue(max_write_queue, overflow)
        else:
            self._wover = None
        self.metrics = metrics if metrics is not None else Metrics()
        self._framer = FrameBuffer()
        self._frames: deque[bytes] = deque()  # parsed, not yet delivered
        self._rbuffered = 0  # bytes across self._frames
        self._rpending: asyncio.Future | None = None  # a recv() awaiting
        self._reading = False  # fd registered with the loop
        self._reof = False
        self._rexc: TransportError | None = None
        self._wbufs: list[bytes | memoryview] = []
        self._wbytes = 0
        self._wlock = threading.Lock()  # queue accounting: any-thread sends
        self._wdrained = asyncio.Event()
        self._wdrained.set()
        self._werror: BaseException | None = None
        self._writer_task: asyncio.Task | None = None
        self._closing = False
        self._timeout_s: float | None = None

    # -- bounded-queue send path --------------------------------------------

    @property
    def write_queue_depth(self) -> int:
        """Bytes enqueued but not yet accepted by the kernel (including
        frames spilled to the overflow queue, when one is configured)."""
        depth = self._wbytes
        if self._wover is not None:
            depth += self._wover.queued_bytes
        return depth

    def _enqueue(self, bufs: list, nbytes: int, frames: list[bytes] | None = None) -> None:
        """Queue ``bufs`` (totalling ``nbytes``); ``frames`` lists the raw
        message payloads they carry, for overflow-policy accounting."""
        if self._closing:
            raise TransportError("send on closed transport")
        if self._werror is not None:
            raise TransportError(
                f"send failed: {self._werror}"
            ) from self._werror
        over = self._wover
        with self._wlock:
            if over is not None and len(over) and frames is not None:
                # A spill backlog exists: everything routes behind it so
                # frame order survives the overflow episode.
                full = False
                for payload in frames:
                    self._spill_locked(payload)
            # A single burst larger than the bound is allowed on an *empty*
            # queue (it could never be sent otherwise); anything else over
            # the bound is a slow consumer and must surface, not accumulate.
            elif self._wbytes and self._wbytes + nbytes > self.max_write_queue:
                if over is not None and frames is not None:
                    full = False
                    for payload in frames:
                        self._spill_locked(payload)
                else:
                    full = True
            else:
                full = False
                self._wbufs.extend(bufs)
                self._wbytes += nbytes
        if full:
            self.metrics.inc("aio.queue_full")
            raise WriteQueueFull(
                f"write queue full: {self._wbytes} queued + {nbytes} new "
                f"> {self.max_write_queue} bytes; peer is not draining"
            )
        # Sends are legal from any thread (a blocking publisher fanning
        # to wire taps); only the loop's own thread may touch asyncio
        # state directly, so foreign threads defer the wake-up.
        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            running = None
        if running is self._loop:
            self._wake_writer()
        else:
            try:
                self._loop.call_soon_threadsafe(self._wake_writer)
            except RuntimeError as exc:  # loop already closed under us
                raise TransportError("send failed: event loop closed") from exc

    def _wake_writer(self) -> None:
        """Loop-thread only: get the queued bytes moving.

        The fast path flushes inline — one ``sendmsg`` right here, no
        task wakeup, no event churn — because on an idle link the kernel
        buffer almost always has room.  Only what the kernel will not
        take right now is left to a writer task, which drains on
        writability and exits when the queue empties.
        """
        if self._closing or self._werror is not None:
            return
        if self._writer_task is not None:
            return  # an active writer picks up the new bufs on its next pass
        self._flush_inline()
        if self._wbufs and self._werror is None:
            self._wdrained.clear()
            self._writer_task = self._loop.create_task(self._writer())

    def _flush_inline(self) -> None:
        sock = self._sock
        while True:
            with self._wlock:
                window = self._wbufs[:_IOV_MAX]
            if not window:
                return
            try:
                sent = sock.sendmsg(window)
            except (BlockingIOError, InterruptedError):
                return  # kernel buffer full: hand off to the writer task
            except OSError as exc:
                self._fail(exc)
                return
            self._consume(sent, window)

    def _spill_locked(self, payload: bytes) -> None:
        """Push one frame into the overflow queue (``_wlock`` held)."""
        if self._wover.push(payload):
            self.metrics.inc("aio.overflow_queued")
        else:
            self.metrics.inc("aio.overflow_dropped")

    def _promote_locked(self) -> None:
        """Move spilled frames back into the live queue (``_wlock`` held)
        once the kernel has drained it to half capacity."""
        over = self._wover
        if over is None or not len(over):
            return
        low_water = self.max_write_queue // 2
        if self._wbytes > low_water:
            return
        while self._wbytes <= low_water:
            payload = over.pop()
            if payload is None:
                break
            self._wbufs.append(_LEN.pack(len(payload)))
            self._wbufs.append(payload)
            self._wbytes += 4 + len(payload)
            self.metrics.inc("aio.overflow_promoted")

    def _consume(self, sent: int, window: list) -> None:
        """Account ``sent`` bytes against the queue head (partial-send
        resume via memoryview re-slicing, as in ``SocketTransport``)."""
        with self._wlock:
            self._wbytes -= sent
            idx = 0
            # Zero-length bufs (an empty frame's payload) count as sent
            # even when ``sent`` hits 0 — left behind, they would wedge
            # the queue as a forever-0-byte ``sendmsg`` window.
            while sent or (idx < len(window) and len(window[idx]) == 0):
                buf = window[idx]
                if sent >= len(buf):
                    sent -= len(buf)
                    idx += 1
                else:
                    self._wbufs[idx] = memoryview(buf)[sent:]
                    sent = 0
            del self._wbufs[:idx]
            if self._wover is not None:
                self._promote_locked()

    def send(self, payload) -> None:
        """Queue one framed message (synchronous, never blocks)."""
        n = len(payload)
        if n > MAX_FRAME:
            raise TransportError(f"frame too large: {n}")
        pinned = _pin(payload)
        self._enqueue(
            [_LEN.pack(n), pinned],
            4 + n,
            [pinned] if self._wover is not None else None,
        )

    def send_many(self, frames) -> None:
        """Queue many framed messages as one all-or-nothing burst."""
        bufs: list[bytes] = []
        pinned: list[bytes] = []
        total = 0
        for payload in frames:
            n = len(payload)
            if n > MAX_FRAME:
                raise TransportError(f"frame too large: {n}")
            data = _pin(payload)
            bufs.append(_LEN.pack(n))
            bufs.append(data)
            pinned.append(data)
            total += 4 + n
        if bufs:
            self._enqueue(bufs, total, pinned if self._wover is not None else None)

    def send_segments(self, segments) -> None:
        """Queue one logical message from many buffers, zero-copy: the
        length prefix and each segment stay separate iovecs."""
        bufs = [_pin(s) for s in segments]
        total = sum(len(s) for s in bufs)
        if total > MAX_FRAME:
            raise TransportError(f"frame too large: {total}")
        # The overflow queue needs whole frames to apply its policy, so
        # spilling joins the segments; the zero-copy fast path is intact.
        self._enqueue(
            [_LEN.pack(total), *bufs],
            4 + total,
            [b"".join(bytes(s) for s in bufs)] if self._wover is not None else None,
        )

    async def drain(self) -> None:
        """Wait until the write queue is empty (explicit backpressure:
        a handler awaiting this has paused its reads)."""
        while (
            (self._wbytes or (self._wover is not None and len(self._wover)))
            and self._werror is None
            and not self._closing
        ):
            await self._wdrained.wait()
        if self._werror is not None:
            raise TransportError(f"send failed: {self._werror}") from self._werror

    async def _writer(self) -> None:
        """The drain task, alive only while the kernel buffer pushes
        back: vectored ``sendmsg`` on writability, resuming mid-buffer
        on partial sends (same discipline as ``SocketTransport._sendv``),
        exiting the moment the queue empties.  New bufs landing while it
        runs are picked up on its next snapshot; once it has exited,
        ``_wake_writer`` starts over with an inline flush."""
        sock, loop = self._sock, self._loop
        try:
            while True:
                with self._wlock:
                    window = self._wbufs[:_IOV_MAX]
                if not window:
                    self._wdrained.set()
                    return
                try:
                    sent = sock.sendmsg(window)
                except (BlockingIOError, InterruptedError):
                    await _writable(loop, sock)
                    continue
                except OSError as exc:
                    self._fail(exc)
                    return
                self._consume(sent, window)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # never die silently: fail the transport
            self._fail(exc)
        finally:
            # No await between the empty snapshot and this line, so a
            # loop-thread _wake_writer can never observe a stale task.
            self._writer_task = None

    def _fail(self, exc: BaseException) -> None:
        self._werror = exc
        self.metrics.inc("aio.send_errors")
        with self._wlock:
            self._wbufs.clear()
            self._wbytes = 0
            if self._wover is not None:
                self._wover.clear()
        self._wdrained.set()  # wake drainers so they observe the error

    # -- persistent reader pump ---------------------------------------------
    #
    # The fd stays registered with the loop while the connection is
    # live; the readiness callback does the kernel read *and* the frame
    # parse inline (no task switch), queues complete frames, and wakes
    # an awaiting recv() only when there is something to deliver.  This
    # is the asyncio protocol discipline — one epoll registration per
    # connection instead of add/remove churn and a fresh future per
    # read.  Read-ahead is bounded by ``max_read_buffer``: past it the
    # pump unregisters and TCP flow control pushes back on the peer.

    def set_timeout(self, timeout_s: float | None) -> None:
        """Bound each ``recv``/``recv_many``; exceeded →
        :class:`TransportTimeout` (sends are queued, never timed)."""
        self._timeout_s = timeout_s

    def _resume_reading(self) -> None:
        if not self._reading and not self._closing and not self._reof \
                and self._rexc is None:
            self._loop.add_reader(self._sock.fileno(), self._on_readable)
            self._reading = True

    def _pause_reading(self) -> None:
        if self._reading:
            self._loop.remove_reader(self._sock.fileno())
            self._reading = False

    def _on_readable(self) -> None:
        framer, sock, frames = self._framer, self._sock, self._frames
        try:
            while True:
                view = framer.writable(framer.needed())
                try:
                    got = sock.recv_into(view)
                except (BlockingIOError, InterruptedError):
                    break
                if not got:
                    self._reof = True
                    self._pause_reading()
                    break
                short = got < len(view)
                framer.advance(got)
                while True:
                    data = framer.next_frame()
                    if data is None:
                        break
                    frames.append(data)
                    self._rbuffered += len(data)
                if short:
                    break  # kernel drained: skip the would-block syscall
        except TransportError as exc:  # framer rejected hostile input
            self._rexc = exc
            self._pause_reading()
        except OSError as exc:
            self._rexc = TransportError(f"recv failed: {exc}")
            self._pause_reading()
        if self._rbuffered >= self.max_read_buffer:
            self._pause_reading()  # handler is behind: stop reading ahead
        if frames or self._reof or self._rexc is not None:
            fut = self._rpending
            if fut is not None and not fut.done():
                fut.set_result(None)

    def _pop_frame(self) -> bytes:
        data = self._frames.popleft()
        self._rbuffered -= len(data)
        return data

    async def _next_frame(self) -> bytes:
        while True:
            if self._frames:
                data = self._pop_frame()
                if not self._reading and self._rbuffered <= self.max_read_buffer // 2:
                    self._resume_reading()
                return data
            if self._rexc is not None:
                raise self._rexc
            if self._reof:
                if self._framer.pending:
                    raise TransportError("connection closed mid-frame")
                raise PeerClosedError("peer closed the connection")
            if self._closing:
                raise TransportError("recv on closed transport")
            self._resume_reading()
            fut = self._loop.create_future()
            self._rpending = fut
            try:
                # Cancellation (a timeout) can only land here, between
                # deliveries — the parse happens in the loop callback,
                # never mid-await — so no received byte is ever lost.
                await fut
            finally:
                self._rpending = None

    async def recv(self) -> bytes:
        if self._timeout_s is None:
            return await self._next_frame()
        try:
            return await asyncio.wait_for(self._next_frame(), self._timeout_s)
        except asyncio.TimeoutError as exc:
            raise TransportTimeout(f"recv timed out after {self._timeout_s}s") from exc

    def poll_recv(self) -> bytes | None:
        """One already-parsed frame, or ``None`` — never blocks.

        Loop-thread only (like every other asyncio touchpoint): the
        health plane calls this from handlers to harvest pongs between
        awaits without committing the coroutine to a blocking ``recv``.
        """
        if self._frames:
            data = self._pop_frame()
            if not self._reading and self._rbuffered <= self.max_read_buffer // 2:
                self._resume_reading()
            return data
        if self._rexc is not None:
            raise self._rexc
        if self._reof:
            if self._framer.pending:
                raise TransportError("connection closed mid-frame")
            raise PeerClosedError("peer closed the connection")
        if self._closing:
            raise TransportError("recv on closed transport")
        self._resume_reading()
        return None

    async def recv_many(self, max_frames: int = 0) -> list[bytes]:
        """One awaited frame plus every further complete frame the pump
        has already parsed — no extra syscalls, no extra wake-ups."""
        out = [await self.recv()]
        frames = self._frames
        if frames:
            take = len(frames) if max_frames <= 0 else min(len(frames), max_frames - 1)
            if take == len(frames):  # the common case: drain in bulk
                out.extend(frames)
                frames.clear()
                self._rbuffered = 0
            else:
                for _ in range(take):
                    out.append(self._pop_frame())
        if not self._reading and self._rbuffered <= self.max_read_buffer // 2:
            self._resume_reading()
        return out

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if self._closing:
            return
        self._closing = True
        self._pause_reading()  # unregister before the fd goes away
        if self._writer_task is not None:
            self._writer_task.cancel()
        self._wdrained.set()
        fut = self._rpending
        if fut is not None and not fut.done():
            fut.set_result(None)  # the waiter observes _closing and raises
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


def _writable(loop: asyncio.AbstractEventLoop, sock: socket.socket):
    """A future resolving when ``sock`` is writable again."""
    fut = loop.create_future()
    fd = sock.fileno()

    def on_writable() -> None:
        loop.remove_writer(fd)
        if not fut.done():
            fut.set_result(None)

    loop.add_writer(fd, on_writable)
    fut.add_done_callback(lambda _f: loop.remove_writer(fd))
    return fut


async def drain(transport) -> None:
    """``await transport.drain()`` for any transport: a no-op on
    transports without a write queue (sync sockets, pipes, wrappers that
    do not delegate)."""
    drain_fn = getattr(transport, "drain", None)
    if drain_fn is not None:
        await drain_fn()


class AsyncServer:
    """A single-process acceptor multiplexing every connection on one
    event loop.

    ``handler`` is an async callable invoked with one
    :class:`AsyncSocketTransport` per accepted connection; the connection
    closes when it returns (after a final :meth:`~AsyncSocketTransport.drain`)
    or raises.  ``max_clients`` sheds connections beyond the bound at
    accept time (closed immediately, counted as ``aio.shed``);
    ``once`` serves exactly one connection then stops (CI smoke loops).

    Usage — fully async::

        server = AsyncServer(echo_handler())
        async with server:               # binds, serves in background
            ...

    or from synchronous code (the thin-wrapper guarantee)::

        host, port = server.bind()       # kernel port known before the loop
        server.run()                     # blocks; server.stop() from any thread
    """

    def __init__(
        self,
        handler: ConnectionHandler,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        backlog: int = 128,
        max_clients: int | None = None,
        max_write_queue: int = DEFAULT_MAX_WRITE_QUEUE,
        overflow: str = "block",
        once: bool = False,
        metrics: Metrics | None = None,
    ):
        if max_clients is not None and max_clients < 1:
            raise ValueError("max_clients must be >= 1")
        self._handler = handler
        self._host = host
        self._port = port
        self._backlog = backlog
        self.max_clients = max_clients
        self.max_write_queue = max_write_queue
        self.overflow = overflow
        self._once = once
        self.metrics = metrics if metrics is not None else Metrics()
        self._listener: socket.socket | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._stop_requested = False
        self._conn_tasks: set[asyncio.Task] = set()
        self._conn_transports: set[AsyncSocketTransport] = set()
        self._serve_task: asyncio.Task | None = None

    # -- lifecycle -----------------------------------------------------------

    def bind(self) -> tuple[str, int]:
        """Bind and listen (idempotent); returns ``(host, port)`` with the
        kernel-assigned port resolved — callable before any loop exists,
        so a launcher can print the port ahead of the first accept."""
        if self._listener is None:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            try:
                sock.bind((self._host, self._port))
            except OSError:
                sock.close()
                raise
            sock.listen(self._backlog)
            sock.setblocking(False)
            self._listener = sock
        return self._listener.getsockname()[:2]

    @property
    def active_connections(self) -> int:
        return len(self._conn_tasks)

    def stop(self) -> None:
        """Request a prompt exit of :meth:`serve` (thread-safe): the
        accept loop wakes, open connections are cancelled and closed."""
        self._stop_requested = True
        loop, event = self._loop, self._stop_event
        if loop is not None and event is not None:
            with contextlib.suppress(RuntimeError):  # loop already closed
                loop.call_soon_threadsafe(event.set)

    def run(self) -> None:
        """Synchronous entry point: drive the event loop to completion."""
        asyncio.run(self.serve())

    async def __aenter__(self) -> "AsyncServer":
        self.bind()
        self._serve_task = asyncio.get_running_loop().create_task(self.serve())
        return self

    async def __aexit__(self, *exc) -> None:
        self.stop()
        if self._serve_task is not None:
            await self._serve_task

    # -- the accept loop -----------------------------------------------------

    async def serve(self) -> None:
        """Accept and serve until :meth:`stop` (or, with ``once``, until
        the first connection completes)."""
        self.bind()
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        if self._stop_requested:
            self._stop_event.set()
        stop_wait = self._loop.create_task(self._stop_event.wait())
        listener = self._listener
        try:
            while not self._stop_event.is_set():
                accept = self._loop.create_task(self._loop.sock_accept(listener))
                done, _ = await asyncio.wait(
                    {accept, stop_wait}, return_when=asyncio.FIRST_COMPLETED
                )
                if accept not in done:
                    accept.cancel()
                    with contextlib.suppress(asyncio.CancelledError, OSError):
                        await accept
                    break
                try:
                    conn, _peer = accept.result()
                except OSError:
                    if self._stop_event.is_set():
                        break
                    continue
                task = self._accepted(conn)
                if self._once and task is not None:
                    await task
                    break
        finally:
            stop_wait.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await stop_wait
            for task in list(self._conn_tasks):
                task.cancel()
            if self._conn_tasks:
                await asyncio.gather(*self._conn_tasks, return_exceptions=True)
            if listener is not None:
                listener.close()
                self._listener = None

    def _accepted(self, conn: socket.socket) -> asyncio.Task | None:
        self.metrics.inc("aio.accepted")
        if self.max_clients is not None and len(self._conn_tasks) >= self.max_clients:
            # Shed cleanly: the excess client sees an orderly FIN
            # (PeerClosedError on its next recv), never a hung socket.
            self.metrics.inc("aio.shed")
            conn.close()
            return None
        transport = AsyncSocketTransport(
            conn,
            max_write_queue=self.max_write_queue,
            overflow=self.overflow,
            metrics=self.metrics,
        )
        task = self._loop.create_task(self._run_handler(transport))
        self._conn_tasks.add(task)
        task.add_done_callback(self._conn_tasks.discard)
        return task

    async def _run_handler(self, transport: AsyncSocketTransport) -> None:
        self._conn_transports.add(transport)
        try:
            await self._handler(transport)
            await transport.drain()
        except (TransportError, asyncio.CancelledError):
            pass  # connection-scoped: the peer went away or we are stopping
        except Exception:
            self.metrics.inc("aio.handler_errors")
        finally:
            self._conn_transports.discard(transport)
            transport.close()

    async def drain_and_stop(self, deadline_s: float = 5.0) -> None:
        """Graceful shutdown: goodbye every peer, flush queues, then stop.

        Each live connection gets a goodbye ping (nonce 0 — "I am
        draining, re-dial elsewhere"), queued sends are given
        ``deadline_s`` to reach the kernel, and only then does the
        accept loop stop and cancel what remains.  Unlike bare
        :meth:`stop`, peers learn about the shutdown from the protocol
        rather than from a reset connection.
        """
        transports = list(self._conn_transports)
        for transport in transports:
            send_goodbye(transport)
        if transports:
            flush = asyncio.gather(
                *(drain(t) for t in transports), return_exceptions=True
            )
            try:
                await asyncio.wait_for(flush, deadline_s)
            except asyncio.TimeoutError:
                self.metrics.inc("aio.drain_timeouts")
        self.metrics.inc("aio.drained")
        self.stop()


# -- per-connection handler adapters ----------------------------------------
#
# Each adapter turns an existing synchronous protocol engine into an
# AsyncServer connection handler.  Send paths need no adaptation (sends
# are sync enqueues); only the recv points become awaits — for RPC via
# the sans-io generator RpcServer.serve_steps.


async def serve_rpc_call(rpc, transport) -> None:
    """Drive exactly one :class:`~repro.core.rpc.RpcServer` call on an
    async transport, awaiting frames where the blocking driver would
    have called ``transport.recv()``."""
    gen = rpc.serve_steps(transport)
    try:
        next(gen)
        while True:
            gen.send(await transport.recv())
    except StopIteration:
        return


def rpc_handler(rpc) -> ConnectionHandler:
    """Serve an :class:`~repro.core.rpc.RpcServer` per connection until
    the peer leaves, the server is stopped, or protocol damage exceeds
    the consecutive-error cap."""

    async def handle(transport: AsyncSocketTransport) -> None:
        consecutive = 0
        while not rpc.stopped:
            try:
                await serve_rpc_call(rpc, transport)
                consecutive = 0
            except PbioError:
                rpc.metrics.inc("protocol_errors")
                consecutive += 1
                if consecutive >= MAX_CONSECUTIVE_PROTOCOL_ERRORS:
                    return
                continue
            await transport.drain()

    return handle


def fmtserv_handler(server) -> ConnectionHandler:
    """Serve a :class:`~repro.fmtserv.FormatServer` per connection — the
    async analogue of its blocking :meth:`~repro.fmtserv.FormatServer.serve`,
    with the same protocol-error accounting and drop cap."""

    async def handle(transport: AsyncSocketTransport) -> None:
        consecutive = 0
        while not server.stopped:
            try:
                await serve_rpc_call(server._rpc, transport)
                consecutive = 0
            except PbioError:
                server.metrics.inc("fmtserv.protocol_errors")
                consecutive += 1
                if consecutive >= MAX_CONSECUTIVE_PROTOCOL_ERRORS:
                    server.metrics.inc("fmtserv.connections_dropped")
                    return
                continue
            await transport.drain()

    return handle


def relay_handler(relay, *, max_frames: int = 0) -> ConnectionHandler:
    """Feed a :class:`~repro.net.relay.Relay` from each connection: every
    burst a peer sends is forwarded (announcements absorbed and
    replayed, data fanned out) exactly as ``relay.pump_batch`` would.

    Downstreams attached as :class:`AsyncSocketTransport` get bounded
    send queues for free: a slow downstream's queue fills,
    :class:`~repro.net.transport.WriteQueueFull` surfaces as a send
    error, and the relay's PR 2 quarantine machinery evicts it.
    """

    async def handle(transport: AsyncSocketTransport) -> None:
        while True:
            relay.forward_batch(await transport.recv_many(max_frames))

    return handle


def channel_handler(channel) -> ConnectionHandler:
    """Serve an :class:`~repro.net.channel.EventChannel` over the
    network: each connection becomes a wire-level subscriber (missed
    announcements replayed on join) *and* an ingress publisher — frames
    the peer sends are published into the channel (minus itself).

    Durable-delivery ack frames need no special handling here: a remote
    subscriber writes its ``MSG_ACK`` frames onto the same connection it
    receives data on (the back-channel), they arrive through
    ``recv_many`` like any ingress frame, and :meth:`EventChannel.ingest`
    routes them to the channel's registered ack listeners (each
    :class:`~repro.net.durable.DurablePublisher`) instead of the
    subscribers."""

    async def handle(transport: AsyncSocketTransport) -> None:
        tap = channel.attach_wire(transport.send)
        try:
            while True:
                for message in await transport.recv_many():
                    channel.ingest(message, exclude=tap)
                await transport.drain()
        finally:
            channel.detach_wire(tap)

    return handle


def echo_handler(fn: Callable[[bytes], bytes] | None = None) -> ConnectionHandler:
    """Apply ``fn`` (default: identity) to each burst and send it back —
    the async analogue of :class:`~repro.net.sockets.EchoServer`."""

    async def handle(transport: AsyncSocketTransport) -> None:
        if fn is None:  # pure echo: no per-record call, no copy
            while True:
                transport.send_many(await transport.recv_many())
                await transport.drain()
        while True:
            frames = await transport.recv_many()
            transport.send_many([fn(f) for f in frames])
            await transport.drain()

    return handle
