"""Sharded relay fabric: consistent-hash routing, fan-out trees, edge filters.

One :class:`~repro.net.relay.Relay` is one event loop: aggregate
throughput is capped by a single process however many downstreams it
fans to.  This module shards the relay plane the way the paper's
closing section wants message operations pushed "`into' the
communication co-processors" — by channel, with the fabric itself
touching nothing but the 16-byte header:

* a :class:`HashRing` (consistent hashing with virtual nodes) maps
  ``(context_id, format_id)`` channel keys to N workers; membership
  changes move only the channels adjacent to the joined/left worker's
  points (the classic minimal-movement property);
* each :class:`RelayWorker` owns the channels the ring assigns it, one
  per-channel fan-out tree of :class:`Relay` nodes: above a configurable
  ``branching_factor`` the leaves are chunked under interior relays
  (workers chain as interior nodes), so a 10 000-subscriber channel
  costs each node at most ``branching_factor`` sends per record;
* the :class:`FabricDispatcher` front routes every inbound frame by
  sniffing only the channel key from its header — data, sequenced and
  token frames are forwarded *verbatim*, never decoded (announcements
  are remembered as opaque bytes for replay, validation happens at the
  owning worker's relay);
* filters push down to the edge: ``subscribe(..., filter_expr=...)``
  places a :class:`~repro.core.filters.RecordFilter` on the subscriber's
  *leaf* attachment, compiled per arriving wire format against the
  packed bytes (interior hops forward verbatim) and shared through the
  fabric-wide :class:`~repro.core.runtime.ConverterCache`, so N
  subscribers with one predicate compile it once.

The existing planes are integrated, not reimplemented.  Worker death
is detected the way the health plane detects peer death — ingest
failures count toward quarantine, a :class:`~repro.net.health.ProbePolicy`
schedules probes and the eviction deadline — and quarantine triggers a
ring rebalance: surviving workers take over the lost channels, their
subscribers are re-attached (with the announcement replay
:meth:`Relay.attach` already performs), and the publisher WAL's
retransmission covers the frames that died in the worker's queues.
Durable streams keep PR 8 semantics per shard: ``MSG_DATA_SEQ`` frames
pass through unmodified, subscriber acks are harvested up each fan-out
tree (interior relays aggregate their leaves' min-cursor exactly as a
standalone relay does), and the dispatcher forwards each shard's
min-cursor upstream, never-regressing per channel across rebalances.

See docs/fabric.md for the full design.
"""

from __future__ import annotations

import bisect
import hashlib
import struct
import time
from collections import deque
from typing import Callable, Iterable

from repro.core import encoder as enc
from repro.core.errors import PbioError
from repro.core.runtime import ConverterCache, Metrics
from repro.core.safety import DEFAULT_LIMITS, DecodeLimits
from repro.net.health import ProbePolicy
from repro.net.relay import ACTIVE, EVICTED, QUARANTINED, Downstream, Relay
from repro.net.transport import PeerUnresponsive, Transport, TransportError

#: Virtual nodes per worker.  512 keeps every worker's owned share of
#: the hash space within ~14% of fair across 2..8 workers (measured over
#: 400 random worker-name sets), comfortably inside the 20% balance
#: target; the per-lookup cost is one bisect over ``workers * vnodes``
#: points, and the rebuild a membership change pays is a ~30 ms sort at
#: 8 workers — rare (scale events, failures) and off the record path.
DEFAULT_VNODES = 512

#: Fan-out tree branching factor: a relay node (root or interior) sends
#: each record to at most this many children before another tree level
#: is introduced.
DEFAULT_BRANCHING = 8


class FabricError(RuntimeError):
    """Fabric-level misuse: no live workers, unknown worker, bad key."""


def _hash64(data: bytes) -> int:
    """The ring's 64-bit hash point for ``data`` (sha1-based: stable
    across processes and Python versions, unlike ``hash()``)."""
    return int.from_bytes(hashlib.sha1(data).digest()[:8], "big")


_KEY = struct.Struct(">II")


class HashRing:
    """Consistent hashing with virtual nodes over worker names.

    Each worker contributes ``vnodes`` points ``sha1("<name>#<i>")`` to
    a 64-bit ring; a channel key ``(context_id, format_id)`` hashes to a
    point and is owned by the first worker point at or after it
    (wrapping).  Adding a worker therefore steals only the key ranges
    immediately before its new points; removing one hands its ranges to
    the next points around the ring — no other key moves.
    """

    def __init__(self, workers: Iterable[str] = (), *, vnodes: int = DEFAULT_VNODES):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._members: set[str] = set()
        self._points: list[int] = []
        self._owners: list[str] = []
        for worker in workers:
            self.add(worker)

    @staticmethod
    def key_hash(key: tuple[int, int]) -> int:
        """The ring point for one ``(context_id, format_id)`` channel."""
        cid, fid = key
        return _hash64(_KEY.pack(cid & 0xFFFFFFFF, fid & 0xFFFFFFFF))

    def add(self, worker: str) -> None:
        if worker in self._members:
            raise ValueError(f"worker {worker!r} already on the ring")
        self._members.add(worker)
        self._rebuild()

    def remove(self, worker: str) -> None:
        self._members.remove(worker)
        self._rebuild()

    def _rebuild(self) -> None:
        # Membership changes are rare (scale events, failures); a full
        # re-sort keeps lookup a single bisect over flat arrays.  Point
        # collisions between workers tie-break on the name, so the order
        # is deterministic everywhere.
        points = sorted(
            (_hash64(f"{worker}#{i}".encode()), worker)
            for worker in self._members
            for i in range(self.vnodes)
        )
        self._points = [p for p, _ in points]
        self._owners = [w for _, w in points]

    def owner(self, key: tuple[int, int]) -> str | None:
        """The worker owning ``key`` (None on an empty ring)."""
        if not self._points:
            return None
        i = bisect.bisect_right(self._points, self.key_hash(key))
        return self._owners[i % len(self._owners)]

    @property
    def workers(self) -> list[str]:
        return sorted(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, worker: str) -> bool:
        return worker in self._members

    def assignment(self, keys: Iterable[tuple[int, int]]) -> dict[str, list[tuple[int, int]]]:
        """``{worker: [keys...]}`` for a set of channels (ownership map)."""
        out: dict[str, list[tuple[int, int]]] = {w: [] for w in self._members}
        for key in keys:
            owner = self.owner(key)
            if owner is not None:
                out[owner].append(key)
        return out

    def arc_shares(self) -> dict[str, float]:
        """Fraction of the hash space each worker owns (sums to 1.0) —
        the ring's deterministic balance, independent of any key sample."""
        if not self._points:
            return {}
        space = 1 << 64
        shares = {w: 0 for w in self._members}
        prev = self._points[-1] - space
        for point, owner in zip(self._points, self._owners):
            shares[owner] += point - prev
            prev = point
        return {w: n / space for w, n in shares.items()}


class EdgeSubscription:
    """One subscriber placed on a worker: the transport, the channel key
    and the (optional) pushed-down filter.  ``downstream`` is the live
    :class:`~repro.net.relay.Downstream` handle inside whichever tree
    relay currently owns the leaf — it changes on every tree rebuild."""

    def __init__(
        self,
        key: tuple[int, int] | None,
        transport: Transport,
        format_name: str | None,
        filter_expr: str | None,
    ):
        self.key = key
        self.transport = transport
        self.format_name = format_name
        self.filter_expr = filter_expr
        self.worker_name: str | None = None
        self.downstream: Downstream | None = None


class _InteriorLink(Transport):
    """The in-process edge between a tree relay and its interior child.

    ``send``/``send_many`` feed the child relay's forward path directly
    (no copies, no queues); the child's upstream acks are queued here as
    a back-channel the parent harvests with ``poll_recv`` in ``heal()``,
    exactly as it would off a socket.  Probe pings are answered
    immediately — an in-process child is alive iff we are.
    """

    def __init__(self) -> None:
        self.relay: Relay | None = None
        self._backchannel: deque[bytes] = deque()

    def enqueue_ack(self, frame: bytes) -> None:
        """The child relay's ``ack_upstream`` sink."""
        self._backchannel.append(frame)

    def send(self, message) -> None:
        if len(message) >= enc.HEADER_SIZE and message[0] == enc.MAGIC \
                and message[2] == enc.MSG_PING:
            try:
                nonce, _depth = enc.parse_ping(bytes(message))
            except PbioError:
                return
            if nonce != enc.GOODBYE_NONCE:
                self._backchannel.append(enc.encode_pong(nonce, 0))
            return
        # Data frames pass through uncopied (the relay forwards MSG_DATA
        # verbatim and copies only what it retains — announcements and
        # replay windows); borrowed views are materialized once here so
        # nothing downstream can outlive a receive-buffer lease.
        self.relay.forward(message if isinstance(message, bytes) else bytes(message))

    def send_many(self, messages) -> None:
        self.relay.forward_batch(
            [m if isinstance(m, bytes) else bytes(m) for m in messages]
        )

    def recv(self) -> bytes:
        if self._backchannel:
            return self._backchannel.popleft()
        raise TransportError("interior link has no pending back-channel frame")

    def poll_recv(self) -> bytes | None:
        return self._backchannel.popleft() if self._backchannel else None

    def close(self) -> None:
        self._backchannel.clear()


def _chunks(items: list, size: int) -> list[list]:
    return [items[i : i + size] for i in range(0, len(items), size)]


class _ChannelFanout:
    """One channel's fan-out tree on one worker.

    ``root`` ingests the channel's frames; when the leaf count exceeds
    the worker's branching factor, leaves are chunked bottom-up under
    interior relays until one level fits under the root.  Leaves carry
    the pushed-down filters; interior hops forward verbatim.  The tree
    is rebuilt from scratch on membership changes — cheap (subscribe
    events are rare next to records) and correct: the worker replays its
    announcement backlog through the fresh root, which cascades it down
    the new tree, so every leaf can decode what arrives next.
    """

    def __init__(self, worker: "RelayWorker", key: tuple[int, int]):
        self.worker = worker
        self.key = key
        self.leaves: list[EdgeSubscription] = []
        self.root: Relay | None = None
        self._interiors: list[Relay] = []
        self._rebuild()

    @property
    def relays(self) -> list[Relay]:
        return [*self._interiors, self.root]

    @property
    def depth(self) -> int:
        """Tree depth in relay levels (1 = flat fan-out)."""
        n = max(1, len(self.leaves) + len(self.worker.taps))
        levels = 1
        while n > self.worker.branching_factor:
            n = -(-n // self.worker.branching_factor)
            levels += 1
        return levels

    @property
    def queue_depth(self) -> int:
        return sum(
            d.write_queue_depth for relay in self.relays for d in relay.active_downstreams
        )

    def add(self, sub: EdgeSubscription) -> None:
        self.leaves.append(sub)
        self._rebuild()

    def remove(self, sub: EdgeSubscription) -> None:
        self.leaves.remove(sub)
        self._rebuild()

    def _attach(self, relay: Relay, children: list) -> None:
        for kind, child in children:
            if kind == "leaf":
                child.downstream = relay.attach(
                    child.transport,
                    format_name=child.format_name,
                    filter_expr=child.filter_expr,
                )
            else:  # an interior link: verbatim hop, no filter
                relay.attach(child)

    def _rebuild(self) -> None:
        worker = self.worker
        # Taps (worker-wide wildcard subscribers, e.g. pbio-fabric peers)
        # get a fresh leaf record per tree so their Downstream handles
        # never collide across channels.
        tap_leaves = [
            EdgeSubscription(self.key, tap.transport, tap.format_name, tap.filter_expr)
            for tap in worker.taps
        ]
        level: list[tuple[str, object]] = [
            ("leaf", sub) for sub in (*self.leaves, *tap_leaves)
        ]
        interiors: list[Relay] = []
        while len(level) > worker.branching_factor:
            next_level: list[tuple[str, object]] = []
            for chunk in _chunks(level, worker.branching_factor):
                link = _InteriorLink()
                interior = worker._new_relay(ack_upstream=link.enqueue_ack)
                link.relay = interior
                interiors.append(interior)
                self._attach(interior, chunk)
                next_level.append(("link", link))
            level = next_level
        root = worker._new_relay(ack_upstream=worker._emit_ack)
        self._attach(root, level)
        # Replay the worker's announcement backlog through the new root;
        # forward() stores, dedups and cascades it down every level, so
        # the whole tree (and every leaf) regains the format state.
        for frame in worker._announcements:
            root.forward(frame)
        self.root = root
        self._interiors = interiors

    def heal(self, now: float | None = None) -> None:
        # Deepest level first (interiors were appended bottom-up): a
        # leaf's ack harvested at its interior this pass is aggregated
        # and queued on the link, where the next level up harvests it —
        # one pass moves cursors one level, repeated passes converge.
        for relay in self._interiors:
            relay.heal(now)
        self.root.heal(now)

    def drain_and_stop(self, deadline_s: float = 5.0) -> None:
        self.root.drain_and_stop(deadline_s)
        for relay in self._interiors:
            relay.drain_and_stop(deadline_s)


class RelayWorker:
    """One shard of the fabric: the relays for the channels a ring
    assigns to this worker, one fan-out tree per channel.

    The worker is addressed through :meth:`ingest` /
    :meth:`ingest_batch` (the dispatcher's route targets); a dead worker
    (:meth:`kill` — the in-process stand-in for ``kill -9``) raises
    :class:`~repro.net.transport.PeerUnresponsive` from both, which is
    what lets the dispatcher's health machinery treat worker death
    exactly like peer death.
    """

    def __init__(
        self,
        name: str,
        *,
        branching_factor: int = DEFAULT_BRANCHING,
        cache: ConverterCache | None = None,
        limits: DecodeLimits | None = DEFAULT_LIMITS,
        quarantine_after: int = 3,
        probe_policy: ProbePolicy | None = None,
        overflow: str = "block",
        max_queue_bytes: int = 1 << 20,
        clock: Callable[[], float] = time.monotonic,
        replay_window: int = 256,
        ack_upstream: Callable[[bytes], None] | None = None,
        format_service=None,
    ):
        if branching_factor < 2:
            raise ValueError("branching_factor must be >= 2")
        self.name = name
        self.branching_factor = branching_factor
        #: Shared across every relay in every tree on this worker (and,
        #: when the dispatcher hands one in, across the whole fabric):
        #: converters and compiled filters are built once per fabric.
        self.cache = cache if cache is not None else ConverterCache()
        self.limits = limits
        self.quarantine_after = quarantine_after
        self.probe_policy = probe_policy
        self.overflow = overflow
        self.max_queue_bytes = max_queue_bytes
        self.clock = clock
        self.replay_window = replay_window
        self.ack_upstream = ack_upstream
        self.format_service = format_service
        self.alive = True
        self.metrics = Metrics()
        self._fanouts: dict[tuple[int, int], _ChannelFanout] = {}
        self._announcements: list[bytes] = []
        self._seen_announcements: set[bytes] = set()
        self.taps: list[EdgeSubscription] = []

    def _new_relay(self, *, ack_upstream: Callable[[bytes], None] | None) -> Relay:
        return Relay(
            cache=self.cache,
            quarantine_after=self.quarantine_after,
            limits=self.limits,
            format_service=self.format_service,
            probe_policy=self.probe_policy,
            overflow=self.overflow,
            max_queue_bytes=self.max_queue_bytes,
            clock=self.clock,
            ack_upstream=ack_upstream,
            replay_window=self.replay_window,
        )

    def _emit_ack(self, frame: bytes) -> None:
        """Root relays' ``ack_upstream`` sink: one shard's min-cursor."""
        self.metrics.inc("worker.acks_up")
        if self.ack_upstream is not None:
            self.ack_upstream(frame)

    def _check_alive(self) -> None:
        if not self.alive:
            raise PeerUnresponsive(f"worker {self.name!r} is down")

    # -- the dispatcher-facing ingest path -----------------------------------

    def ingest(self, message: bytes, header=None) -> None:
        """Route one frame into the owning channel's tree.

        ``header`` is the dispatcher's already-parsed header (single
        parse per frame across the whole fabric).
        """
        self._check_alive()
        if header is None:
            header = enc.try_unpack_header(message)
        if header is None:
            self.metrics.inc("worker.rejected")
            return
        kind = header[0]
        if kind in (enc.MSG_FORMAT, enc.MSG_FORMAT_TOKEN):
            self._absorb_announcement(message)
            return
        if kind in (enc.MSG_DATA, enc.MSG_DATA_SEQ):
            key = (header[1], header[2])
            self._fanout(key).root.forward(message, header=header)
            self.metrics.inc("worker.routed")
            return
        # Pings, pongs, requests and forward-path acks have no business
        # inside a shard; the dispatcher normally drops them first.
        self.metrics.inc("worker.dropped")

    def ingest_batch(self, frames: list[tuple[bytes, tuple]]) -> None:
        """Route one dispatcher run — ``(message, header)`` pairs already
        sniffed upstream — grouping per channel so each tree gets one
        vectored ``forward_batch``.  Cross-channel order inside a run is
        not meaningful; per-channel arrival order is preserved."""
        self._check_alive()
        by_key: dict[tuple[int, int], tuple[list[bytes], list[tuple]]] = {}
        for message, header in frames:
            kind = header[0]
            if kind in (enc.MSG_DATA, enc.MSG_DATA_SEQ):
                messages, headers = by_key.setdefault((header[1], header[2]), ([], []))
                messages.append(message)
                headers.append(header)
            else:
                self.ingest(message, header)
        for key, (messages, headers) in by_key.items():
            self._fanout(key).root.forward_batch(messages, headers=headers)
            self.metrics.inc("worker.routed", len(messages))

    def _absorb_announcement(self, message: bytes) -> None:
        data = bytes(message)
        fresh = data not in self._seen_announcements
        if fresh:
            self._seen_announcements.add(data)
            self._announcements.append(data)
            self.metrics.inc("worker.announcements")
        # Existing trees hear it either way (their relays dedup); the
        # backlog replay covers trees created later.
        for fanout in self._fanouts.values():
            fanout.root.forward(data)

    def _fanout(self, key: tuple[int, int]) -> _ChannelFanout:
        fanout = self._fanouts.get(key)
        if fanout is None:
            fanout = self._fanouts[key] = _ChannelFanout(self, key)
        return fanout

    # -- subscriptions --------------------------------------------------------

    def subscribe(
        self,
        key: tuple[int, int],
        transport: Transport,
        *,
        format_name: str | None = None,
        filter_expr: str | None = None,
    ) -> EdgeSubscription:
        """Attach a subscriber leaf for one channel (filter pushed down
        to the leaf attachment; announcements replayed by the tree)."""
        sub = EdgeSubscription(tuple(key), transport, format_name, filter_expr)
        self.adopt(sub)
        return sub

    def adopt(self, sub: EdgeSubscription) -> None:
        """Place an existing subscription handle on this worker — the
        migration primitive: the dispatcher moves *handles* between
        workers on rebalance, so caller and fabric always agree on the
        one object that represents the subscription."""
        self._check_alive()
        sub.worker_name = self.name
        self._fanout(sub.key).add(sub)
        self.metrics.inc("worker.subscribed")

    def unsubscribe(self, sub: EdgeSubscription) -> None:
        fanout = self._fanouts.get(sub.key)
        if fanout is not None and sub in fanout.leaves:
            fanout.remove(sub)
            self.metrics.inc("worker.unsubscribed")

    def subscribe_tap(self, transport: Transport) -> EdgeSubscription:
        """Attach a worker-wide wildcard subscriber: it receives every
        channel this worker owns, now and later (``pbio-fabric`` peers)."""
        self._check_alive()
        tap = EdgeSubscription(None, transport, None, None)
        tap.worker_name = self.name
        self.taps.append(tap)
        for fanout in self._fanouts.values():
            fanout._rebuild()
        return tap

    def unsubscribe_tap(self, tap: EdgeSubscription) -> None:
        if tap in self.taps:
            self.taps.remove(tap)
            for fanout in self._fanouts.values():
                fanout._rebuild()

    # -- lifecycle / health ---------------------------------------------------

    def heal(self, now: float | None = None) -> None:
        """Drive every tree's quarantine/ack machinery one step."""
        if not self.alive:
            return
        for fanout in self._fanouts.values():
            fanout.heal(now)

    def kill(self) -> None:
        """Die abruptly, state and all — the in-process ``kill -9``.

        Every tree, announcement and subscription is gone; the next
        :meth:`ingest` raises, which is how the dispatcher finds out.
        """
        self.alive = False
        self._fanouts.clear()
        self._announcements.clear()
        self._seen_announcements.clear()
        self.taps.clear()
        self.metrics.inc("worker.killed")

    def revive(self) -> None:
        """Come back empty (a restarted process): the dispatcher replays
        announcements and re-places subscriptions on reactivation."""
        self.alive = True

    def drain_and_stop(self, deadline_s: float = 5.0) -> None:
        """Graceful exit: flush every tree, goodbye every leaf, go down."""
        for fanout in self._fanouts.values():
            fanout.drain_and_stop(deadline_s)
        self.alive = False
        self.metrics.inc("worker.drained")

    # -- observability --------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        return sum(f.queue_depth for f in self._fanouts.values())

    @property
    def channel_keys(self) -> list[tuple[int, int]]:
        return sorted(self._fanouts)

    def channels(self) -> dict[tuple[int, int], dict]:
        """Per-channel ``{"subscribers", "queue_depth", "depth"}``."""
        return {
            key: {
                "subscribers": len(fanout.leaves) + len(self.taps),
                "queue_depth": fanout.queue_depth,
                "depth": fanout.depth,
            }
            for key, fanout in sorted(self._fanouts.items())
        }


class _WorkerSlot:
    """The dispatcher's per-worker health record (the same state machine
    a relay keeps per downstream, lifted one level up)."""

    def __init__(self, worker: RelayWorker):
        self.worker = worker
        self.state = ACTIVE
        self.consecutive_errors = 0
        self.quarantined_at: float | None = None
        self.probe_attempts = 0
        self.next_probe_at: float | None = None


class FabricDispatcher:
    """The fabric front: header-sniff routing over a worker ring.

    ``workers`` is either an int (that many local :class:`RelayWorker`\\ s
    named ``w0..wN-1`` are built, sharing the dispatcher's converter
    cache) or an iterable of prebuilt workers.  Inbound frames go
    through :meth:`forward` / :meth:`forward_batch`:

    * data and sequenced frames route to ``ring.owner((cid, fid))``
      verbatim — the dispatcher parses the header once and threads it
      through the worker into the tree (no re-sniffing anywhere);
    * format and token announcements are remembered as opaque bytes and
      broadcast to every active worker (and replayed into workers that
      join or return later), so any worker can own any channel after a
      rebalance;
    * pings/pongs/requests/forward-path acks are dropped with counters,
      as a relay drops them.

    Worker failure follows the health plane's shape: consecutive ingest
    errors quarantine the worker, quarantine removes it from the ring
    and triggers :meth:`_rebalance` (channels re-owned, subscribers
    re-placed with announcement replay), a
    :class:`~repro.net.health.ProbePolicy` schedules liveness probes
    with exponential backoff, a worker alive again is reactivated (ring
    re-add, backlog replay, rebalance back) and one silent past the
    eviction deadline is evicted for good.  Call :meth:`heal`
    periodically — once per pump burst is enough.

    Durable delivery aggregates per shard: each worker forwards its
    root relays' min-cursor acks into the dispatcher, which never
    regresses a channel's cursor (a freshly-placed worker starts at 0;
    the publisher must not see time run backward) and emits the result
    to ``ack_upstream`` — the same sink contract a relay takes.
    """

    def __init__(
        self,
        workers: int | Iterable[RelayWorker],
        *,
        vnodes: int = DEFAULT_VNODES,
        branching_factor: int = DEFAULT_BRANCHING,
        cache: ConverterCache | None = None,
        limits: DecodeLimits | None = DEFAULT_LIMITS,
        quarantine_after: int = 3,
        probe_policy: ProbePolicy | None = None,
        worker_probe_policy: ProbePolicy | None = None,
        overflow: str = "block",
        max_queue_bytes: int = 1 << 20,
        clock: Callable[[], float] = time.monotonic,
        replay_window: int = 256,
        ack_upstream: Callable[[bytes], None] | None = None,
        format_service=None,
    ):
        self.cache = cache if cache is not None else ConverterCache()
        self.limits = limits
        self.quarantine_after = quarantine_after
        #: Probe schedule for *workers* (quarantine recovery/eviction).
        self.probe_policy = probe_policy
        self._clock = clock
        self.ack_upstream = ack_upstream
        self.metrics = Metrics()
        self._slots: dict[str, _WorkerSlot] = {}
        self._subs: dict[tuple[int, int], list[EdgeSubscription]] = {}
        self._taps: list[EdgeSubscription] = []
        self._keys: set[tuple[int, int]] = set()
        self._owner_of: dict[tuple[int, int], str | None] = {}
        self._announcements: list[bytes] = []
        self._seen_announcements: set[bytes] = set()
        self._acked: dict[tuple[int, int], int] = {}
        if isinstance(workers, int):
            if workers < 1:
                raise ValueError("a fabric needs at least one worker")
            workers = [
                RelayWorker(
                    f"w{i}",
                    branching_factor=branching_factor,
                    cache=self.cache,
                    limits=limits,
                    quarantine_after=quarantine_after,
                    probe_policy=worker_probe_policy,
                    overflow=overflow,
                    max_queue_bytes=max_queue_bytes,
                    clock=clock,
                    replay_window=replay_window,
                    format_service=format_service,
                )
                for i in range(workers)
            ]
        self.ring = HashRing(vnodes=vnodes)
        for worker in workers:
            self._admit(worker)

    def _admit(self, worker: RelayWorker) -> None:
        if worker.name in self._slots:
            raise ValueError(f"duplicate worker name {worker.name!r}")
        worker.ack_upstream = self._on_shard_ack
        self._slots[worker.name] = _WorkerSlot(worker)
        self.ring.add(worker.name)

    # -- membership -----------------------------------------------------------

    def add_worker(self, worker: RelayWorker) -> None:
        """Scale out: replay the announcement backlog into the worker,
        put it on the ring and rebalance (existing taps included)."""
        self._admit(worker)
        self._replay_announcements(worker)
        for tap in self._taps:
            worker.subscribe_tap(tap.transport)
        self.metrics.inc("fabric.workers_added")
        self._rebalance()

    def remove_worker(self, name: str, *, drain: bool = True) -> None:
        """Scale in: take the worker off the ring, move its channels to
        the survivors, then drain it gracefully."""
        slot = self._slots.pop(name, None)
        if slot is None:
            raise FabricError(f"no worker named {name!r}")
        if name in self.ring:
            self.ring.remove(name)
        self.metrics.inc("fabric.workers_removed")
        self._rebalance()
        if drain and slot.worker.alive:
            slot.worker.drain_and_stop()
        slot.state = EVICTED

    def worker(self, name: str) -> RelayWorker:
        slot = self._slots.get(name)
        if slot is None:
            raise FabricError(f"no worker named {name!r}")
        return slot.worker

    @property
    def workers(self) -> list[RelayWorker]:
        return [slot.worker for slot in self._slots.values()]

    def worker_states(self) -> dict[str, str]:
        return {name: slot.state for name, slot in self._slots.items()}

    # -- the forward path -----------------------------------------------------

    def forward(self, message: bytes, *, header=None) -> None:
        """Route one inbound frame (header sniffed at most once)."""
        if header is None:
            header = enc.try_unpack_header(message)
        if header is None:
            self.metrics.inc("fabric.rejected")
            return
        kind = header[0]
        if kind in (enc.MSG_DATA, enc.MSG_DATA_SEQ):
            if self.limits is not None and len(message) > self.limits.max_message_size:
                self.metrics.inc("fabric.rejected")
                return
            if kind == enc.MSG_DATA and header[3] != len(message) - enc.HEADER_SIZE:
                self.metrics.inc("fabric.rejected")
                return
            self._route_data(message, header)
            return
        if kind in (enc.MSG_FORMAT, enc.MSG_FORMAT_TOKEN):
            self._broadcast_announcement(message)
            return
        if kind in (enc.MSG_PING, enc.MSG_PONG):
            self.metrics.inc("fabric.heartbeats_dropped")
            return
        if kind == enc.MSG_ACK:
            self.metrics.inc("fabric.acks_dropped")
            return
        self.metrics.inc("fabric.requests_dropped")

    def forward_batch(self, messages, headers=None) -> None:
        """Route a burst, grouping data runs per owning worker so each
        worker sees one vectored batch per run (control frames flush
        pending runs first: announcement-before-data order holds)."""
        pairs = zip(messages, headers) if headers is not None else ((m, None) for m in messages)
        runs: dict[str, list[tuple[bytes, tuple]]] = {}
        for message, header in pairs:
            if header is None:
                header = enc.try_unpack_header(message)
            if header is not None and header[0] in (enc.MSG_DATA, enc.MSG_DATA_SEQ):
                if self.limits is not None and len(message) > self.limits.max_message_size:
                    self.metrics.inc("fabric.rejected")
                    continue
                if header[0] == enc.MSG_DATA and header[3] != len(message) - enc.HEADER_SIZE:
                    self.metrics.inc("fabric.rejected")
                    continue
                name = self._owner_for((header[1], header[2]))
                if name is None:
                    self.metrics.inc("fabric.dropped_no_worker")
                    continue
                runs.setdefault(name, []).append((message, header))
                continue
            for name, run in runs.items():
                self._deliver_run(name, run)
            runs.clear()
            self.forward(message, header=header)
        for name, run in runs.items():
            self._deliver_run(name, run)

    def _owner_for(self, key: tuple[int, int]) -> str | None:
        if key not in self._keys:
            self._keys.add(key)
        name = self.ring.owner(key)
        self._owner_of[key] = name
        return name

    def _route_data(self, message: bytes, header) -> None:
        name = self._owner_for((header[1], header[2]))
        if name is None:
            self.metrics.inc("fabric.dropped_no_worker")
            return
        slot = self._slots[name]
        try:
            slot.worker.ingest(message, header)
        except TransportError:
            self._count_worker_failure(slot)
            self.metrics.inc("fabric.dropped_worker_error")
        else:
            slot.consecutive_errors = 0
            self.metrics.inc("fabric.routed")

    def _deliver_run(self, name: str, run: list[tuple[bytes, tuple]]) -> None:
        slot = self._slots.get(name)
        if slot is None or slot.state != ACTIVE:
            self.metrics.inc("fabric.dropped_worker_error", len(run))
            return
        try:
            slot.worker.ingest_batch(run)
        except TransportError:
            self._count_worker_failure(slot)
            self.metrics.inc("fabric.dropped_worker_error", len(run))
        else:
            slot.consecutive_errors = 0
            self.metrics.inc("fabric.routed", len(run))

    def _broadcast_announcement(self, message: bytes) -> None:
        """Remember (verbatim bytes, never decoded) and fan to every
        active worker; each worker's relays validate and dedup."""
        data = bytes(message)
        if data not in self._seen_announcements:
            self._seen_announcements.add(data)
            self._announcements.append(data)
            self.metrics.inc("fabric.announcements")
        for slot in self._slots.values():
            if slot.state != ACTIVE:
                continue
            try:
                slot.worker.ingest(data)
            except TransportError:
                self._count_worker_failure(slot)

    def _replay_announcements(self, worker: RelayWorker) -> None:
        for frame in self._announcements:
            try:
                worker.ingest(frame)
            except TransportError:
                return

    # -- subscriptions --------------------------------------------------------

    def subscribe(
        self,
        key: tuple[int, int],
        transport: Transport,
        *,
        format_name: str | None = None,
        filter_expr: str | None = None,
    ) -> EdgeSubscription:
        """Place a subscriber on the channel's owning worker (the filter
        expression pushes down to the leaf there; on rebalance the
        subscription follows the channel to its new owner)."""
        key = (int(key[0]), int(key[1]))
        name = self._owner_for(key)
        if name is None:
            raise FabricError("fabric has no live workers to place the subscription on")
        sub = self._slots[name].worker.subscribe(
            key, transport, format_name=format_name, filter_expr=filter_expr
        )
        self._subs.setdefault(key, []).append(sub)
        self.metrics.inc("fabric.subscriptions")
        return sub

    def unsubscribe(self, sub: EdgeSubscription) -> None:
        subs = self._subs.get(sub.key, [])
        if sub in subs:
            subs.remove(sub)
        if sub.worker_name is not None:
            slot = self._slots.get(sub.worker_name)
            if slot is not None and slot.worker.alive:
                slot.worker.unsubscribe(sub)

    def tap(self, transport: Transport) -> EdgeSubscription:
        """Subscribe a transport to *every* worker's whole output (the
        ``pbio-fabric serve`` peer contract, like ``channel_handler``)."""
        tap = EdgeSubscription(None, transport, None, None)
        self._taps.append(tap)
        for slot in self._slots.values():
            if slot.state == ACTIVE and slot.worker.alive:
                slot.worker.subscribe_tap(transport)
        return tap

    def untap(self, tap: EdgeSubscription) -> None:
        if tap in self._taps:
            self._taps.remove(tap)
        for slot in self._slots.values():
            if not slot.worker.alive:
                continue
            for worker_tap in list(slot.worker.taps):
                if worker_tap.transport is tap.transport:
                    slot.worker.unsubscribe_tap(worker_tap)

    # -- health / rebalance ---------------------------------------------------

    def _count_worker_failure(self, slot: _WorkerSlot) -> None:
        slot.consecutive_errors += 1
        self.metrics.inc("fabric.worker_errors")
        if slot.state == ACTIVE and slot.consecutive_errors >= self.quarantine_after:
            self._quarantine(slot)

    def _quarantine(self, slot: _WorkerSlot) -> None:
        now = self._clock()
        slot.state = QUARANTINED
        slot.quarantined_at = now
        slot.probe_attempts = 0
        slot.next_probe_at = (
            now + self.probe_policy.delay(0) if self.probe_policy is not None else None
        )
        if slot.worker.name in self.ring:
            self.ring.remove(slot.worker.name)
        self.metrics.inc("fabric.workers_quarantined")
        self._rebalance()

    def _reactivate(self, slot: _WorkerSlot) -> None:
        slot.state = ACTIVE
        slot.consecutive_errors = 0
        slot.quarantined_at = None
        slot.probe_attempts = 0
        slot.next_probe_at = None
        # A returned worker may be a restarted process with empty state:
        # replay the backlog (dedup absorbs it if it never died), restore
        # fabric-wide taps, then take traffic again.
        self._replay_announcements(slot.worker)
        for tap in self._taps:
            worker_taps = slot.worker.taps
            if not any(t.transport is tap.transport for t in worker_taps):
                slot.worker.subscribe_tap(tap.transport)
        self.ring.add(slot.worker.name)
        self.metrics.inc("fabric.workers_reactivated")
        self._rebalance()

    def _evict(self, slot: _WorkerSlot) -> None:
        slot.state = EVICTED
        self.metrics.inc("fabric.workers_evicted")

    def reactivate_worker(self, name: str) -> None:
        """Operator override: bring a quarantined worker back by hand
        (the probe machinery does this automatically with a policy)."""
        slot = self._slots.get(name)
        if slot is None:
            raise FabricError(f"no worker named {name!r}")
        if slot.state in (QUARANTINED, EVICTED) and slot.worker.alive:
            self._reactivate(slot)

    def heal(self, now: float | None = None) -> None:
        """One step of the fabric state machine: detect dead workers,
        probe and reactivate/evict quarantined ones, drive every live
        worker's own tree healing (which is what moves acks upstream)."""
        if now is None:
            now = self._clock()
        policy = self.probe_policy
        for slot in list(self._slots.values()):
            if slot.state == ACTIVE:
                if not slot.worker.alive:
                    self._quarantine(slot)
                    continue
                slot.worker.heal(now)
                continue
            if slot.state != QUARANTINED or policy is None:
                continue
            entered = slot.quarantined_at
            if entered is not None and now - entered >= policy.eviction_deadline_s:
                self._evict(slot)
                continue
            if slot.next_probe_at is not None and now >= slot.next_probe_at:
                slot.probe_attempts += 1
                slot.next_probe_at = now + policy.delay(slot.probe_attempts)
                self.metrics.inc("fabric.probes_sent")
                # The in-process probe: is the worker taking traffic
                # again?  (A socket fabric would ping here instead.)
                if slot.worker.alive:
                    self._reactivate(slot)

    def _rebalance(self) -> None:
        """Re-own every known channel after a membership change and move
        the subscriptions of channels whose owner changed.  Announcement
        state needs no special motion: every active worker holds the
        backlog (broadcast on arrival, replayed on join/return), and
        :meth:`RelayWorker.subscribe` builds trees that replay it to
        every leaf."""
        self.metrics.inc("fabric.rebalances")
        moved = 0
        for key in sorted(self._keys):
            new_name = self.ring.owner(key)
            old_name = self._owner_of.get(key)
            if new_name == old_name:
                continue
            self._owner_of[key] = new_name
            subs = self._subs.get(key, ())
            if subs:
                moved += 1
            for sub in subs:
                old_slot = self._slots.get(sub.worker_name or "")
                if old_slot is not None and old_slot.worker.alive:
                    old_slot.worker.unsubscribe(sub)
                if new_name is None:
                    sub.worker_name = None
                    sub.downstream = None
                    continue
                self._slots[new_name].worker.adopt(sub)
        if moved:
            self.metrics.inc("fabric.migrated_channels", moved)

    def _on_shard_ack(self, frame: bytes) -> None:
        """A worker root relay's min-cursor ack for one channel: never
        regress (a re-placed shard restarts at cursor 0), then forward
        toward the publisher."""
        try:
            cid, fid, cursor, _nb, _bits = enc.parse_ack(frame)
        except PbioError:
            return
        key = (cid, fid)
        if cursor <= self._acked.get(key, 0):
            return
        self._acked[key] = cursor
        self.metrics.inc("fabric.acks_up")
        if self.ack_upstream is not None:
            self.ack_upstream(frame)

    # -- observability --------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        return sum(
            slot.worker.queue_depth
            for slot in self._slots.values()
            if slot.state == ACTIVE and slot.worker.alive
        )

    def ownership(self) -> dict[str, list[tuple[int, int]]]:
        """``{worker: [channel keys]}`` for every channel seen so far."""
        return self.ring.assignment(self._keys)

    def drain_and_stop(self, deadline_s: float = 5.0) -> None:
        for slot in self._slots.values():
            if slot.worker.alive:
                slot.worker.drain_and_stop(deadline_s)
        self.metrics.inc("fabric.drained")


def fabric_handler(dispatcher: FabricDispatcher, *, max_frames: int = 0):
    """An :class:`~repro.net.aio.AsyncServer` connection handler serving
    a fabric: every peer is an ingress publisher *and* a fabric-wide
    subscriber tap (the ``channel_handler`` contract).  Pings are
    answered with the fabric's aggregate queue depth (``pbio-fabric
    status``); everything else routes through the dispatcher with its
    header parsed exactly once.  Each burst also drives :meth:`heal`.
    """

    async def handle(transport) -> None:
        tap = dispatcher.tap(transport)
        try:
            while True:
                frames = await transport.recv_many(max_frames)
                batch: list[bytes] = []
                headers: list[tuple] = []
                for frame in frames:
                    header = enc.try_unpack_header(frame)
                    if header is not None and header[0] == enc.MSG_PING:
                        try:
                            nonce, _depth = enc.parse_ping(frame)
                        except PbioError:
                            continue
                        if nonce != enc.GOODBYE_NONCE:
                            depth = min(dispatcher.queue_depth, 0xFFFFFFFF)
                            transport.send(enc.encode_pong(nonce, depth))
                        continue
                    batch.append(frame)
                    headers.append(header)
                if batch:
                    dispatcher.forward_batch(batch, headers=headers)
                dispatcher.heal()
        finally:
            dispatcher.untap(tap)

    return handle
