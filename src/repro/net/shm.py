"""Same-host shared-memory ring transport.

When both endpoints of a connection live on one machine, the kernel
socket path — two syscalls and two payload copies per message minimum —
is pure overhead: the bytes never leave RAM.  This module replaces it
with a pair of single-producer/single-consumer byte rings in a shared
memory mapping, one ring per direction:

* :class:`ShmRingTransport` — a full :class:`~repro.net.transport.Transport`
  over two mapped rings.  ``send`` writes the frame into the ring and
  publishes a new tail counter; ``recv`` copies it out and publishes a
  new head.  The busy steady state is **zero syscalls in both
  directions** — data and counters travel purely through shared pages.
* :func:`shm_pair` — an in-process connected pair (tests, benchmarks).
* :func:`auto_connect` — upgrade negotiation over an existing transport:
  the server offers ring files, the client attaches them *if it can*
  (attaching is the same-host test — the files only exist here), and
  either side falls back to the original transport on any failure.

Ring layout (one file per direction)::

    offset   field
    0        magic  "PBIOSHM1"                     (8 bytes)
    8        capacity (u64 le) — data area size
    16       nonce (16 bytes) — attach handshake proof
    64       tail (u64 le) — writer's cumulative byte count   ─┐ own
    72       wclosed (u32 le) — writer has closed              │ cache
    76       wwait (u32 le) — writer parked on space doorbell ─┘ line
    128      head (u64 le) — reader's cumulative byte count   ─┐ own
    136      rclosed (u32 le) — reader has closed              │ cache
    140      rwait (u32 le) — reader parked on data doorbell  ─┘ line
    256      data[capacity] — u32-le-length-prefixed frames,
             wrapping byte-wise at ``capacity``

``tail`` and ``head`` are monotonic byte counters (never reduced modulo
capacity), so ``tail - head`` is always the exact number of unread
bytes and empty/full are unambiguous.  The writer publishes ``tail``
only *after* the frame bytes are in place; the reader publishes
``head`` only after copying the frame out.  On the total-store-order
machines CPython runs on, an aligned 8-byte counter store cannot be
observed torn or ahead of the data it guards — the classic seqlock
argument — so no locks are needed for the SPSC discipline.

The counters live 64 bytes apart so the writer's and reader's hot
stores do not false-share one cache line.

Waiting — the doorbell protocol
-------------------------------

Pure spinning is only correct when the peer can run *concurrently*.  On
a single-CPU box (most CI containers) a spinning waiter actively
prevents the peer from producing the very data it waits for, and the
kernel's blocking socket path — which hands the CPU straight to the
peer — wins by default.  Each ring therefore carries two FIFO
*doorbells* next to the mapped file (``<ring>.dbell`` for data,
``<ring>.sbell`` for space), used futex-style:

* a waiter publishes intent (``rwait``/``wwait`` flag), re-checks the
  condition, then blocks in ``read(2)`` on the doorbell;
* the peer, after publishing ``tail``/``head``, rings the doorbell
  (one-byte non-blocking ``write(2)``) *only when the flag is set* —
  the busy steady state never touches the kernel.

On multi-CPU hosts a short ``sched_yield`` spin runs first, so the
common fast path stays syscall-free; on one CPU the spin budget is zero
and waiters park immediately, giving the same direct handoff the socket
gets — minus the protocol stack and the second payload copy.
"""

from __future__ import annotations

import fcntl
import json
import mmap
import os
import select
import struct
import tempfile
import time
import uuid
from collections import deque

from .transport import (
    MAX_FRAME,
    PeerClosedError,
    Transport,
    TransportError,
    TransportTimeout,
)

_MAGIC = b"PBIOSHM1"
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")

_OFF_CAPACITY = 8
_OFF_NONCE = 16
_OFF_TAIL = 64
_OFF_WCLOSED = 72
_OFF_WWAIT = 76
_OFF_HEAD = 128
_OFF_RCLOSED = 136
_OFF_RWAIT = 140
_DATA = 256

#: Default per-direction ring capacity.
DEFAULT_CAPACITY = 1 << 20

#: sched_yield spin iterations before a waiter parks on the doorbell.
#: Zero on a single CPU: spinning there only steals the peer's timeslice.
SPIN_LIMIT = 4096 if (os.cpu_count() or 1) > 1 else 0

# Negotiation frames (auto_connect).  First byte 0x00 can never collide
# with a PBIO message (magic 0xB1) or look like one to a header probe.
_OFFER_TAG = b"\x00SHM-OFFER:"
_NO_OFFER = b"\x00SHM-NONE"
_REPLY_OK = b"\x00SHM-OK"
_REPLY_NO = b"\x00SHM-NO"


def default_shm_dir() -> str:
    """Directory for ring files: ``/dev/shm`` (a real tmpfs — the pages
    are RAM, never disk) when present, the system tempdir otherwise."""
    if os.path.isdir("/dev/shm"):
        return "/dev/shm"
    return tempfile.gettempdir()


def _bell_paths(path: str) -> tuple[str, str]:
    return path + ".dbell", path + ".sbell"


class _Ring:
    """One mapped ring file plus its two doorbell FIFOs."""

    __slots__ = ("mm", "view", "capacity", "path", "data_bell", "space_bell")

    def __init__(
        self, mm: mmap.mmap, capacity: int, path: str, data_bell: int, space_bell: int
    ):
        self.mm = mm
        self.view = memoryview(mm)
        self.capacity = capacity
        self.path = path
        self.data_bell = data_bell
        self.space_bell = space_bell

    # -- lifecycle -----------------------------------------------------------

    @staticmethod
    def _open_bells(path: str) -> tuple[int, int]:
        # O_RDWR on a FIFO (Linux) opens immediately — no open() rendezvous
        # with the peer — and the descriptor never sees EOF.
        dbell_path, sbell_path = _bell_paths(path)
        data_bell = os.open(dbell_path, os.O_RDWR)
        try:
            space_bell = os.open(sbell_path, os.O_RDWR)
        except OSError:
            os.close(data_bell)
            raise
        return data_bell, space_bell

    @classmethod
    def create(cls, path: str, capacity: int, nonce: bytes) -> "_Ring":
        size = _DATA + capacity
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_RDWR, 0o600)
        try:
            os.ftruncate(fd, size)
            mm = mmap.mmap(fd, size)
        finally:
            os.close(fd)  # the mapping outlives the descriptor
        bells = []
        try:
            for bell in _bell_paths(path):
                os.mkfifo(bell, 0o600)
                bells.append(bell)
            data_bell, space_bell = cls._open_bells(path)
        except OSError:
            mm.close()
            os.unlink(path)
            for bell in bells:
                os.unlink(bell)
            raise
        ring = cls(mm, capacity, path, data_bell, space_bell)
        view = ring.view
        view[0:8] = _MAGIC
        _U64.pack_into(view, _OFF_CAPACITY, capacity)
        view[_OFF_NONCE : _OFF_NONCE + 16] = nonce
        return ring

    @classmethod
    def attach(cls, path: str, nonce: bytes | None = None) -> "_Ring":
        fd = os.open(path, os.O_RDWR)
        try:
            size = os.fstat(fd).st_size
            if size < _DATA:
                raise TransportError(f"shm ring too small: {path}")
            mm = mmap.mmap(fd, size)
        finally:
            os.close(fd)
        view = memoryview(mm)
        try:
            if bytes(view[0:8]) != _MAGIC:
                raise TransportError(f"not a PBIO shm ring: {path}")
            (capacity,) = _U64.unpack_from(view, _OFF_CAPACITY)
            if _DATA + capacity != size:
                raise TransportError(f"shm ring size mismatch: {path}")
            if nonce is not None and bytes(view[_OFF_NONCE : _OFF_NONCE + 16]) != nonce:
                raise TransportError(f"shm ring nonce mismatch: {path}")
        except TransportError:
            view.release()
            mm.close()
            raise
        view.release()
        try:
            data_bell, space_bell = cls._open_bells(path)
        except OSError:
            mm.close()
            raise
        return cls(mm, capacity, path, data_bell, space_bell)

    def close(self) -> None:
        if self.view is not None:
            self.view.release()
            self.view = None
        if self.mm is not None:
            self.mm.close()
            self.mm = None
        for fd in (self.data_bell, self.space_bell):
            if fd >= 0:
                try:
                    os.close(fd)
                except OSError:
                    pass
        self.data_bell = self.space_bell = -1

    def unlink(self) -> None:
        for path in (self.path, *_bell_paths(self.path)):
            try:
                os.unlink(path)
            except OSError:
                pass

    # -- shared counters -----------------------------------------------------

    @property
    def tail(self) -> int:
        return _U64.unpack_from(self.view, _OFF_TAIL)[0]

    @tail.setter
    def tail(self, value: int) -> None:
        _U64.pack_into(self.view, _OFF_TAIL, value)

    @property
    def head(self) -> int:
        return _U64.unpack_from(self.view, _OFF_HEAD)[0]

    @head.setter
    def head(self, value: int) -> None:
        _U64.pack_into(self.view, _OFF_HEAD, value)

    @property
    def wclosed(self) -> bool:
        return _U32.unpack_from(self.view, _OFF_WCLOSED)[0] != 0

    def set_wclosed(self) -> None:
        _U32.pack_into(self.view, _OFF_WCLOSED, 1)

    @property
    def rclosed(self) -> bool:
        return _U32.unpack_from(self.view, _OFF_RCLOSED)[0] != 0

    def set_rclosed(self) -> None:
        _U32.pack_into(self.view, _OFF_RCLOSED, 1)

    # -- doorbell flags and rings --------------------------------------------

    @property
    def rwait(self) -> bool:
        return _U32.unpack_from(self.view, _OFF_RWAIT)[0] != 0

    def set_rwait(self, value: int) -> None:
        _U32.pack_into(self.view, _OFF_RWAIT, value)

    @property
    def wwait(self) -> bool:
        return _U32.unpack_from(self.view, _OFF_WWAIT)[0] != 0

    def set_wwait(self, value: int) -> None:
        _U32.pack_into(self.view, _OFF_WWAIT, value)

    def ring_data_bell(self) -> None:
        """Wake a parked reader (writer side, after publishing tail)."""
        self.set_rwait(0)
        try:
            os.write(self.data_bell, b"\x01")
        except (BlockingIOError, OSError):
            pass  # bell already full of wakes, or torn down — either wakes

    def ring_space_bell(self) -> None:
        """Wake a parked writer (reader side, after publishing head)."""
        self.set_wwait(0)
        try:
            os.write(self.space_bell, b"\x01")
        except (BlockingIOError, OSError):
            pass

    # -- byte-wise wrapped data access --------------------------------------

    def write_at(self, stream_pos: int, data) -> None:
        cap = self.capacity
        pos = stream_pos % cap
        n = len(data)
        end = pos + n
        view = self.view
        if end <= cap:
            view[_DATA + pos : _DATA + end] = data
        else:
            first = cap - pos
            view[_DATA + pos : _DATA + cap] = data[:first]
            view[_DATA : _DATA + (n - first)] = data[first:]

    def read_at(self, stream_pos: int, n: int) -> bytes:
        cap = self.capacity
        pos = stream_pos % cap
        end = pos + n
        view = self.view
        if end <= cap:
            return bytes(view[_DATA + pos : _DATA + end])
        first = cap - pos
        return bytes(view[_DATA + pos : _DATA + cap]) + bytes(
            view[_DATA : _DATA + (n - first)]
        )


class ShmRingTransport(Transport):
    """Duplex transport over two SPSC shared-memory rings.

    ``send_ring`` is the ring this endpoint writes, ``recv_ring`` the one
    it reads.  ``owner=True`` marks the endpoint that created the files
    (it unlinks them — harmless if already unlinked).
    """

    def __init__(self, send_ring: _Ring, recv_ring: _Ring, *, owner: bool = False):
        self._send_ring = send_ring
        self._recv_ring = recv_ring
        self._owner = owner
        self._timeout: float | None = None
        self._closed = False
        # Cumulative-tail mark per in-flight frame; pruned as the peer's
        # head passes each mark.  Powers write_queue_depth / drain.
        self._inflight: deque[int] = deque()
        # This endpoint only ever *writes* its send ring's data bell and
        # its recv ring's space bell; make those writes non-blocking so a
        # doorbell brimming with unconsumed wakes can never stall a send.
        for fd in (send_ring.data_bell, recv_ring.space_bell):
            fcntl.fcntl(fd, fcntl.F_SETFL, fcntl.fcntl(fd, fcntl.F_GETFL) | os.O_NONBLOCK)

    def set_timeout(self, timeout_s: float | None) -> None:
        """Bound blocking send/recv; exceeded → :class:`TransportTimeout`."""
        self._timeout = timeout_s

    # -- wait discipline ----------------------------------------------------

    def _deadline(self) -> float | None:
        return None if self._timeout is None else time.monotonic() + self._timeout

    @staticmethod
    def _block_on(fd: int, deadline: float | None, what: str) -> None:
        """Park on a doorbell until rung (or the deadline passes).

        The flag/re-check handshake formally wants a StoreLoad fence
        CPython cannot issue, but the interpreter dilates every
        store→load pair by hundreds of nanoseconds — orders of magnitude
        past any store buffer's drain time — so the SB-litmus window is
        unreachable in practice and the undeadlined park is a single
        blocking ``read(2)``: the same direct kernel handoff a blocking
        socket gets, with one fewer syscall than a select round."""
        if deadline is None:
            os.read(fd, 64)  # swallow a burst of stale wakes in one go
            return
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise TransportTimeout(f"{what} timed out")
        ready, _, _ = select.select([fd], [], [], remaining)
        if ready:
            os.read(fd, 64)
        else:
            raise TransportTimeout(f"{what} timed out")

    # -- send ----------------------------------------------------------------

    def _reserve(self, total: int, deadline) -> int:
        """Wait until ``total`` bytes are free; return the current tail."""
        ring = self._send_ring
        if total > ring.capacity:
            raise TransportError(
                f"frame too large for shm ring: {total} > {ring.capacity}"
            )
        spins = 0
        while True:
            if self._closed:
                raise TransportError("transport is closed")
            if ring.rclosed:
                raise PeerClosedError("send failed: peer closed its ring")
            tail = ring.tail
            if ring.capacity - (tail - ring.head) >= total:
                return tail
            spins += 1
            if spins <= SPIN_LIMIT:
                os.sched_yield()
                continue
            # Park: publish intent, re-check, then block on the bell.
            ring.set_wwait(1)
            try:
                if (
                    ring.capacity - (ring.tail - ring.head) >= total
                    or ring.rclosed
                ):
                    continue
                self._block_on(ring.space_bell, deadline, "shm send")
            finally:
                ring.set_wwait(0)

    def _put_frame(self, tail: int, segments) -> int:
        """Write one length-prefixed frame at ``tail``; return new tail
        (not yet published)."""
        ring = self._send_ring
        n = sum(len(s) for s in segments)
        if n > MAX_FRAME:
            raise TransportError(f"frame too large: {n}")
        ring.write_at(tail, _U32.pack(n))
        pos = tail + 4
        for seg in segments:
            ring.write_at(pos, seg)
            pos += len(seg)
        return pos

    def send(self, payload) -> None:
        n = len(payload)
        if n > MAX_FRAME:
            raise TransportError(f"frame too large: {n}")
        ring = self._send_ring
        tail = self._reserve(4 + n, self._deadline())
        view = ring.view
        cap = ring.capacity
        pos = tail % cap
        if pos + 4 + n <= cap:
            # Common case: prefix and payload both land without wrapping.
            _U32.pack_into(view, _DATA + pos, n)
            view[_DATA + pos + 4 : _DATA + pos + 4 + n] = payload
        else:
            ring.write_at(tail, _U32.pack(n))
            ring.write_at(tail + 4, payload)
        new_tail = tail + 4 + n
        _U64.pack_into(view, _OFF_TAIL, new_tail)  # publish
        if _U32.unpack_from(view, _OFF_RWAIT)[0]:
            ring.ring_data_bell()
        self._inflight.append(new_tail)

    def send_segments(self, segments) -> None:
        """One logical message from many buffers — written directly into
        the ring, published with a single tail store."""
        total = 4 + sum(len(s) for s in segments)
        ring = self._send_ring
        tail = self._reserve(total, self._deadline())
        new_tail = self._put_frame(tail, segments)
        ring.tail = new_tail  # publish: bytes are in place
        if ring.rwait:
            ring.ring_data_bell()
        self._inflight.append(new_tail)

    def send_many(self, frames) -> None:
        """Many frames in one burst.  Contiguous runs that fit the free
        space publish under a single tail store; when the ring fills the
        run so far is published and the writer waits for the reader."""
        deadline = self._deadline()
        ring = self._send_ring
        i = 0
        while i < len(frames):
            total = 4 + len(frames[i])
            tail = self._reserve(total, deadline)
            free = ring.capacity - (tail - ring.head)
            new_tail = tail
            marks = []
            while i < len(frames):
                need = 4 + len(frames[i])
                if new_tail - tail + need > free:
                    break
                new_tail = self._put_frame(new_tail, [frames[i]])
                marks.append(new_tail)
                i += 1
            ring.tail = new_tail  # one publish for the whole run
            if ring.rwait:
                ring.ring_data_bell()
            self._inflight.extend(marks)

    # -- receive -------------------------------------------------------------

    def _pending(self) -> int:
        ring = self._recv_ring
        return ring.tail - ring.head

    def _take_frame(self) -> bytes | None:
        """Pop one complete frame if available, publishing head."""
        ring = self._recv_ring
        view = ring.view
        cap = ring.capacity
        (head,) = _U64.unpack_from(view, _OFF_HEAD)
        (tail,) = _U64.unpack_from(view, _OFF_TAIL)
        avail = tail - head
        if avail < 4:
            return None
        pos = head % cap
        if pos + 4 <= cap:
            (n,) = _U32.unpack_from(view, _DATA + pos)
        else:
            (n,) = _U32.unpack(ring.read_at(head, 4))
        if n > MAX_FRAME:
            raise TransportError(f"corrupt shm ring: frame length {n}")
        if avail < 4 + n:
            return None  # writer mid-publish cannot happen; defensive
        start = (head + 4) % cap
        if start + n <= cap:
            data = bytes(view[_DATA + start : _DATA + start + n])
        else:
            data = ring.read_at(head + 4, n)
        _U64.pack_into(view, _OFF_HEAD, head + 4 + n)  # publish
        if _U32.unpack_from(view, _OFF_WWAIT)[0]:
            ring.ring_space_bell()
        return data

    def recv(self) -> bytes:
        deadline = self._deadline()
        ring = self._recv_ring
        spins = 0
        while True:
            if self._closed:
                raise TransportError("transport is closed")
            data = self._take_frame()
            if data is not None:
                return data
            if ring.wclosed and self._pending() == 0:
                raise PeerClosedError("recv failed: peer closed, ring drained")
            spins += 1
            if spins <= SPIN_LIMIT:
                os.sched_yield()
                continue
            # Park: publish intent, re-check, then block on the bell.
            ring.set_rwait(1)
            try:
                if self._pending() or ring.wclosed:
                    continue
                self._block_on(ring.data_bell, deadline, "shm recv")
            finally:
                ring.set_rwait(0)

    def recv_many(self, max_frames: int = 0) -> list[bytes]:
        """One blocking frame plus every further complete frame already
        in the ring — the same burst semantics as the socket framer."""
        out = [self.recv()]
        while max_frames <= 0 or len(out) < max_frames:
            data = self._take_frame()
            if data is None:
                break
            out.append(data)
        return out

    def poll_recv(self) -> bytes | None:
        """A complete frame if one is in the ring *now*, else None."""
        if self._closed:
            raise TransportError("transport is closed")
        data = self._take_frame()
        if data is not None:
            return data
        if self._recv_ring.wclosed and self._pending() == 0:
            raise PeerClosedError("recv failed: peer closed, ring drained")
        return None

    # -- backpressure introspection ------------------------------------------

    @property
    def write_queue_depth(self) -> int:
        """Frames written but not yet consumed by the peer."""
        inflight = self._inflight
        if inflight:
            head = self._send_ring.head
            while inflight and inflight[0] <= head:
                inflight.popleft()
        return len(inflight)

    def drain(self) -> None:
        """Block until the peer has consumed every written frame."""
        deadline = self._deadline()
        ring = self._send_ring
        spins = 0
        while ring.tail - ring.head:
            if ring.rclosed:
                raise PeerClosedError("drain failed: peer closed its ring")
            spins += 1
            if spins <= SPIN_LIMIT:
                os.sched_yield()
                continue
            ring.set_wwait(1)
            try:
                if not ring.tail - ring.head or ring.rclosed:
                    continue
                self._block_on(ring.space_bell, deadline, "shm drain")
            finally:
                ring.set_wwait(0)
        self._inflight.clear()

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._send_ring.set_wclosed()
            self._recv_ring.set_rclosed()
            # Ring both bells the peer might be parked on: it wakes, sees
            # the closed flag, and fails fast instead of sleeping forever.
            self._send_ring.ring_data_bell()
            self._recv_ring.ring_space_bell()
        except (TypeError, ValueError):
            pass  # rings already torn down
        for ring in (self._send_ring, self._recv_ring):
            ring.close()
            if self._owner:
                ring.unlink()


def _ring_paths(directory: str) -> tuple[str, str]:
    stem = os.path.join(directory, f"pbio-ring-{uuid.uuid4().hex}")
    return stem + ".s2c", stem + ".c2s"


def create_endpoint(
    capacity: int = DEFAULT_CAPACITY, *, directory: str | None = None
) -> tuple[ShmRingTransport, dict]:
    """Create the server side of a ring pair plus the attach offer.

    Returns ``(transport, offer)``; pass ``offer`` (a JSON-able dict of
    the two ring paths and the handshake nonce) to :func:`attach_endpoint`
    in the peer process.
    """
    directory = directory or default_shm_dir()
    nonce = os.urandom(16)
    s2c_path, c2s_path = _ring_paths(directory)
    s2c = _Ring.create(s2c_path, capacity, nonce)
    try:
        c2s = _Ring.create(c2s_path, capacity, nonce)
    except Exception:
        s2c.close()
        s2c.unlink()
        raise
    offer = {"s2c": s2c_path, "c2s": c2s_path, "nonce": nonce.hex()}
    return ShmRingTransport(s2c, c2s, owner=True), offer


def attach_endpoint(offer: dict) -> ShmRingTransport:
    """Attach the client side of a ring pair from an offer dict.

    Raises :class:`TransportError` when the files do not exist here
    (different host), are malformed, or fail the nonce check.
    """
    try:
        nonce = bytes.fromhex(offer["nonce"])
        s2c_path, c2s_path = offer["s2c"], offer["c2s"]
    except (KeyError, TypeError, ValueError) as exc:
        raise TransportError(f"malformed shm offer: {exc}") from exc
    try:
        s2c = _Ring.attach(s2c_path, nonce)
    except OSError as exc:
        raise TransportError(f"cannot attach shm ring: {exc}") from exc
    try:
        c2s = _Ring.attach(c2s_path, nonce)
    except OSError as exc:
        s2c.close()
        raise TransportError(f"cannot attach shm ring: {exc}") from exc
    except Exception:
        s2c.close()
        raise
    return ShmRingTransport(c2s, s2c)


def shm_pair(
    capacity: int = DEFAULT_CAPACITY, *, directory: str | None = None
) -> tuple[ShmRingTransport, ShmRingTransport]:
    """A connected in-process pair (tests, benchmarks, threads).

    The backing files are unlinked immediately — the mappings keep the
    memory alive, nothing is left behind on any exit path.
    """
    server, offer = create_endpoint(capacity, directory=directory)
    client = attach_endpoint(offer)
    server._send_ring.unlink()
    server._recv_ring.unlink()
    server._owner = False  # already unlinked
    return server, client


def auto_connect(
    transport: Transport,
    role: str,
    *,
    capacity: int = DEFAULT_CAPACITY,
    directory: str | None = None,
    timeout_s: float = 5.0,
) -> Transport:
    """Upgrade ``transport`` to shared memory when the peer is local.

    Run on both ends of an established connection with complementary
    roles (``"server"`` / ``"client"``).  The server creates a ring pair
    and sends the attach offer; the client tries to map the files —
    success *is* the same-host proof (and the nonce in the mapping proves
    it found the right files, not a stale path) — and replies.  On
    success both sides return a :class:`ShmRingTransport` and the
    original transport stays open but idle (callers may close it or keep
    it as a control channel).  On any failure — different hosts, no
    shm space, malformed reply — both sides fall back to the original
    transport, which has carried only negotiation frames.
    """
    if role not in ("server", "client"):
        raise ValueError(f"role must be 'server' or 'client', not {role!r}")
    if role == "server":
        try:
            shm, offer = create_endpoint(capacity, directory=directory)
        except OSError:
            transport.send(_NO_OFFER)
            return transport
        transport.send(_OFFER_TAG + json.dumps(offer).encode())
        try:
            reply = transport.recv()
        except TransportError:
            shm.close()
            raise
        if reply == _REPLY_OK:
            # Client is attached: unlink now so no files outlive the
            # mappings regardless of how either process exits.
            shm._send_ring.unlink()
            shm._recv_ring.unlink()
            shm._owner = False
            return shm
        shm.close()
        return transport
    # client
    frame = transport.recv()
    if not frame.startswith(_OFFER_TAG):
        return transport  # _NO_OFFER, or a peer that does not negotiate
    try:
        offer = json.loads(frame[len(_OFFER_TAG):].decode())
        shm = attach_endpoint(offer)
    except (TransportError, ValueError):
        transport.send(_REPLY_NO)
        return transport
    transport.send(_REPLY_OK)
    return shm
