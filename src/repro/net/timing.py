"""Timing utilities and cost-breakdown records.

The paper's Figures 1 and 5 decompose a message round-trip into
``encode | network | decode`` segments per leg.  ``Encode`` spans from the
application's send call to the socket write; ``Decode`` spans from
``recv()`` returning to the data being usable.  These records reproduce
that accounting so benchmark output can be laid out exactly like the
paper's figures.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable


def best_of(fn: Callable[[], object], *, repeats: int = 7, inner: int = 1) -> float:
    """Return the best (minimum) per-call wall time of ``fn`` in seconds.

    Minimum-of-N is the standard technique for CPU-bound micro-timing
    (noise is strictly additive); ``inner`` amortizes the clock overhead
    for very fast operations.
    """
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(inner):
            fn()
        dt = (time.perf_counter() - t0) / inner
        if dt < best:
            best = dt
    return best


def calibrated_inner(fn: Callable[[], object], *, target_s: float = 5e-3, max_inner: int = 10_000) -> int:
    """Pick an inner-loop count so one repeat lasts about ``target_s``."""
    t0 = time.perf_counter()
    fn()
    once = max(time.perf_counter() - t0, 1e-9)
    return max(1, min(max_inner, int(target_s / once)))


class VirtualClock:
    """A manually-advanced monotonic clock for deterministic time-based tests.

    Every time-aware component in the net layer (``RetryPolicy``,
    :class:`repro.net.health.HeartbeatMonitor`, the relay's probe state
    machine) takes an injectable ``clock`` callable defaulting to
    ``time.monotonic``; handing them a ``VirtualClock`` instance runs the
    whole timeline in virtual time — a 60 s eviction deadline takes
    microseconds of wall time and is perfectly reproducible.

    The instance is callable (``clock()`` → current virtual seconds) so it
    drops into any ``clock=time.monotonic`` parameter unchanged, and
    :meth:`sleep` advances time instead of blocking, so it also satisfies
    ``sleep=`` parameters.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("time cannot move backwards")
        self._now += seconds
        return self._now

    def sleep(self, seconds: float) -> None:
        self.advance(max(0.0, seconds))


@dataclass(frozen=True)
class LegCost:
    """One direction of an exchange: sender encode, wire, receiver decode."""

    encode_s: float
    network_s: float
    decode_s: float

    @property
    def total_s(self) -> float:
        return self.encode_s + self.network_s + self.decode_s


@dataclass(frozen=True)
class RoundTripCost:
    """A full round-trip (the paper's Figure 1/5 rows).

    ``forward`` is e.g. sparc -> x86, ``back`` is x86 -> sparc.
    """

    label: str
    payload_bytes: int
    forward: LegCost
    back: LegCost

    @property
    def total_s(self) -> float:
        return self.forward.total_s + self.back.total_s

    @property
    def encode_decode_fraction(self) -> float:
        """Fraction of the round-trip spent outside the network — the
        paper reports this reaches ~66 % for MPICH."""
        cpu = (
            self.forward.encode_s
            + self.forward.decode_s
            + self.back.encode_s
            + self.back.decode_s
        )
        return cpu / self.total_s if self.total_s else 0.0

    def row(self) -> str:
        """One figure-style text row, times in milliseconds."""
        f, b = self.forward, self.back
        return (
            f"{self.label:24s} total {self.total_s * 1e3:9.3f} ms | "
            f"fwd enc {f.encode_s * 1e3:8.4f} net {f.network_s * 1e3:8.4f} dec {f.decode_s * 1e3:8.4f} | "
            f"back enc {b.encode_s * 1e3:8.4f} net {b.network_s * 1e3:8.4f} dec {b.decode_s * 1e3:8.4f}"
        )


@dataclass
class TimingTable:
    """Accumulates labelled measurements and renders a paper-style table."""

    title: str
    columns: list[str]
    rows: list[tuple[str, list[float]]] = field(default_factory=list)
    unit: str = "ms"

    def add(self, label: str, values: list[float]) -> None:
        if len(values) != len(self.columns):
            raise ValueError(f"expected {len(self.columns)} values, got {len(values)}")
        self.rows.append((label, list(values)))

    def render(self) -> str:
        width = max(12, *(len(c) + 2 for c in self.columns))
        head = f"{self.title}\n" + " " * 16 + "".join(f"{c:>{width}}" for c in self.columns)
        lines = [head]
        for label, values in self.rows:
            cells = "".join(f"{v:>{width}.4f}" for v in values)
            lines.append(f"{label:16s}{cells}")
        lines.append(f"(values in {self.unit})")
        return "\n".join(lines)
