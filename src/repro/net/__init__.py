"""Network substrate: transports, the paper-calibrated network model, real
loopback sockets, and round-trip cost accounting."""

from .transport import (
    InMemoryPipe,
    PeerClosedError,
    Transport,
    TransportError,
    TransportTimeout,
    frame,
    read_frame,
    transport_token,
)
from .faults import (
    FaultInjectingTransport,
    FaultPlan,
    ReconnectingTransport,
    RetryPolicy,
)
from .simulated import (
    NetworkModel,
    SimulatedEndpoint,
    SimulatedLink,
    paper_network_times_ms,
)
from .sockets import EchoServer, SocketTransport, loopback_pair
from .timing import LegCost, RoundTripCost, TimingTable, best_of, calibrated_inner
from .channel import ChannelPublisher, EventChannel, SubscriberStats, Subscription
from .relay import Relay

__all__ = [
    "Transport",
    "TransportError",
    "TransportTimeout",
    "PeerClosedError",
    "InMemoryPipe",
    "frame",
    "read_frame",
    "transport_token",
    "FaultPlan",
    "FaultInjectingTransport",
    "RetryPolicy",
    "ReconnectingTransport",
    "NetworkModel",
    "SimulatedLink",
    "SimulatedEndpoint",
    "paper_network_times_ms",
    "SocketTransport",
    "loopback_pair",
    "EchoServer",
    "LegCost",
    "RoundTripCost",
    "TimingTable",
    "best_of",
    "calibrated_inner",
    "EventChannel",
    "ChannelPublisher",
    "Subscription",
    "SubscriberStats",
    "Relay",
]
