"""Network substrate: transports, the paper-calibrated network model, real
loopback sockets, the async event-loop serving core, and round-trip cost
accounting."""

from .transport import (
    FrameBuffer,
    InMemoryPipe,
    PeerClosedError,
    PeerUnresponsive,
    Transport,
    TransportError,
    TransportTimeout,
    WriteQueueFull,
    frame,
    read_frame,
    transport_token,
)
from .health import (
    OVERFLOW_POLICIES,
    BoundedSendQueue,
    CircuitBreaker,
    HeartbeatMonitor,
    ProbePolicy,
    send_goodbye,
)
from .aio import (
    AsyncServer,
    AsyncSocketTransport,
    channel_handler,
    drain,
    echo_handler,
    fmtserv_handler,
    relay_handler,
    rpc_handler,
    serve_rpc_call,
)
from .faults import (
    FaultInjectingTransport,
    FaultPlan,
    ReconnectingTransport,
    RetryPolicy,
)
from .simulated import (
    NetworkModel,
    SimulatedEndpoint,
    SimulatedLink,
    paper_network_times_ms,
)
from .sockets import EchoServer, SocketTransport, loopback_pair
from .timing import LegCost, RoundTripCost, TimingTable, VirtualClock, best_of, calibrated_inner
from .channel import ChannelPublisher, EventChannel, SubscriberStats, Subscription, WireTap
from .relay import Downstream, Relay
from .durable import (
    AckCursorStore,
    DurablePublisher,
    DurableSubscription,
    PublisherWAL,
    SequenceWindow,
)

__all__ = [
    "Transport",
    "TransportError",
    "TransportTimeout",
    "PeerClosedError",
    "PeerUnresponsive",
    "WriteQueueFull",
    "HeartbeatMonitor",
    "ProbePolicy",
    "BoundedSendQueue",
    "CircuitBreaker",
    "OVERFLOW_POLICIES",
    "send_goodbye",
    "FrameBuffer",
    "InMemoryPipe",
    "frame",
    "read_frame",
    "transport_token",
    "AsyncServer",
    "AsyncSocketTransport",
    "serve_rpc_call",
    "drain",
    "rpc_handler",
    "fmtserv_handler",
    "relay_handler",
    "channel_handler",
    "echo_handler",
    "FaultPlan",
    "FaultInjectingTransport",
    "RetryPolicy",
    "ReconnectingTransport",
    "NetworkModel",
    "SimulatedLink",
    "SimulatedEndpoint",
    "paper_network_times_ms",
    "SocketTransport",
    "loopback_pair",
    "EchoServer",
    "LegCost",
    "RoundTripCost",
    "TimingTable",
    "VirtualClock",
    "best_of",
    "calibrated_inner",
    "EventChannel",
    "ChannelPublisher",
    "Subscription",
    "SubscriberStats",
    "WireTap",
    "Relay",
    "Downstream",
    "AckCursorStore",
    "DurablePublisher",
    "DurableSubscription",
    "PublisherWAL",
    "SequenceWindow",
]
