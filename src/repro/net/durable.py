"""The durable delivery plane: sequenced frames, publisher WAL, ack cursors.

The transport layer is self-healing (retry, quarantine, heartbeats —
docs/robustness.md §9) and the file layer is crash-safe (v2 framing, §6),
but the *channels* between them were fire-and-forget: a publisher, relay
or subscriber process crash silently lost every in-flight record.  This
module closes that gap with three cooperating pieces (docs/robustness.md
§11):

* **Sequenced frames** — ``MSG_DATA_SEQ`` (wire type 7) prefixes each
  record with a per-``(context, format)`` monotonic u64 starting at 1;
  ``MSG_ACK`` (type 8) carries a cumulative ack cursor back, plus an
  optional selective-nack bitmap for gap repair.  Both are strict-size
  control-plane citizens of :mod:`repro.core.encoder`.

* **Publisher WAL** — :class:`PublisherWAL` journals every sequenced
  frame *before* it is sent, using the same ``u32 len | payload | crc32 |
  len-echo`` frame discipline as PBIO files (:mod:`repro.core.framing`):
  single-write appends, torn-tail truncation on open, segment rotation,
  and whole-segment compaction once every entry is past the acked
  cursor.  A restarted publisher recovers its unacked backlog and its
  next sequence numbers from the log alone.

* **Exactly-once-observed delivery** — :class:`DurablePublisher` and
  :class:`DurableSubscription` wrap :class:`~repro.net.channel.EventChannel`
  endpoints.  The publisher journals-before-send and retransmits unacked
  frames on reconnect or nack; the subscriber deduplicates by a bounded
  :class:`SequenceWindow` and persists its ack cursor
  (:class:`AckCursorStore`) after each handler return, so redelivery —
  which the at-least-once machinery makes inevitable — is observed
  exactly once, in order.  Everything is opt-in: plain channels, plain
  subscribers and the sync API are untouched, and a plain subscriber on
  a durable stream simply sees the records with the sequencing stripped.

A relay forwards sequenced frames verbatim, aggregates its downstreams'
ack cursors (min-cursor) upstream, and replays from a bounded in-memory
window on downstream reactivation — see :class:`repro.net.relay.Relay`.

Durability is only exact across *process* crashes when the publisher
reuses a stable ``context_id`` (pass it to
:class:`~repro.core.context.IOContext`); the WAL journals announcements
alongside data so retransmits decode even on a subscriber that never saw
the original ones.
"""

from __future__ import annotations

import os
import struct
from collections import OrderedDict
from typing import Any, BinaryIO, Callable

from repro.core import encoder as enc
from repro.core.context import FormatHandle, IOContext
from repro.core.errors import MessageError, PbioError
from repro.core.framing import iter_frames, pack_frame
from repro.core.runtime import DurableStats, Metrics

from .channel import ChannelPublisher, EventChannel, Subscription

_FILE_HEADER = struct.Struct(">8sHxx")  # magic, version, pad
WAL_MAGIC = b"PBIOWALS"
CURSOR_MAGIC = b"PBIOCURS"
WAL_VERSION = 1
_CURSOR_ENTRY = struct.Struct(">IIQ")  # context id, format id, cursor


def _open_framed(
    path: str, magic: bytes, *, metrics: Metrics, label: str
) -> tuple[BinaryIO, list[bytes]]:
    """Open (or create) one crash-safe framed file; return its payloads.

    New files get the 12-byte header; existing ones are validated, their
    intact frames loaded, and any torn tail truncated in place so the
    next append starts at a clean frame boundary.  Damage is counted as
    ``durable.<label>_torn`` / ``durable.<label>_corrupt``.
    """
    if not os.path.exists(path):
        stream = open(path, "w+b")
        stream.write(_FILE_HEADER.pack(magic, WAL_VERSION))
        stream.flush()
        return stream, []
    stream = open(path, "r+b")
    try:
        header = stream.read(_FILE_HEADER.size)
        if len(header) != _FILE_HEADER.size:
            raise MessageError(f"not a {label} file: truncated header")
        found, version = _FILE_HEADER.unpack(header)
        if found != magic:
            raise MessageError(f"not a {label} file: bad magic {found!r}")
        if version != WAL_VERSION:
            raise MessageError(f"unsupported {label} version {version}")

        def damaged(what: str) -> None:
            metrics.inc(f"durable.{label}_torn" if what == "torn" else f"durable.{label}_corrupt")

        payloads: list[bytes] = []
        pos = stream.tell()
        for payload in iter_frames(stream, on_damage=damaged):
            payloads.append(payload)
            pos = stream.tell()
        stream.truncate(pos)
        stream.seek(pos)
    except Exception:
        stream.close()
        raise
    return stream, payloads


class AckCursorStore:
    """Crash-safe persistence for per-stream cumulative cursors.

    An append-only file of framed ``(context id, format id, cursor)``
    entries; the latest entry per stream wins, so advancing a cursor is
    one single-write append — the same torn-tail guarantee as every
    other v2 frame consumer.  The file is compacted (atomic rewrite)
    once the append count dwarfs the live stream count.  ``path=None``
    keeps the cursors in memory only (tests, relay-internal use).
    """

    def __init__(self, path: str | None = None, *, metrics: Metrics | None = None):
        self.path = path
        self.metrics = metrics if metrics is not None else Metrics()
        self._cursors: dict[tuple[int, int], int] = {}
        self._stream: BinaryIO | None = None
        self._appended = 0
        if path is not None:
            stream, payloads = _open_framed(
                path, CURSOR_MAGIC, metrics=self.metrics, label="wal"
            )
            # Reopen unbuffered: every advance is one tiny framed append,
            # and a raw write is both cheaper than write+flush through a
            # buffer and durable against process crash the instant it
            # returns.
            stream.close()
            self._stream = open(path, "r+b", buffering=0)
            self._stream.seek(0, os.SEEK_END)
            for payload in payloads:
                if len(payload) != _CURSOR_ENTRY.size:
                    self.metrics.inc("durable.wal_corrupt")
                    continue
                cid, fid, cursor = _CURSOR_ENTRY.unpack(payload)
                # Append-wins, but never regress: a stale late entry
                # (from an interleaved old writer) cannot move us back.
                key = (cid, fid)
                if cursor > self._cursors.get(key, 0):
                    self._cursors[key] = cursor
            self._appended = len(payloads)

    def cursor(self, key: tuple[int, int]) -> int:
        """Highest contiguously-confirmed sequence for ``key`` (0 = none)."""
        return self._cursors.get(key, 0)

    def cursors(self) -> dict[tuple[int, int], int]:
        return dict(self._cursors)

    def advance(self, key: tuple[int, int], cursor: int) -> bool:
        """Move ``key``'s cursor forward; False if ``cursor`` is not ahead."""
        if cursor <= self._cursors.get(key, 0):
            return False
        self._cursors[key] = cursor
        if self._stream is not None:
            self._stream.write(
                pack_frame(_CURSOR_ENTRY.pack(key[0], key[1], cursor))
            )
            self._appended += 1
            if self._appended > 8 * len(self._cursors) + 128:
                self._rewrite()
        return True

    def _rewrite(self) -> None:
        # Atomic swap, same durability contract as the WAL segments:
        # surviving *process* crash (the write reaches the OS before the
        # replace is visible).  No fsync — an OS crash can at worst
        # regress cursors, degrading exactly-once-observed to
        # at-least-once for the records in between, exactly like the
        # flush-not-fsync segments; fsyncing here would dominate
        # steady-state cost.
        assert self.path is not None and self._stream is not None
        tmp_path = self.path + ".tmp"
        with open(tmp_path, "wb") as tmp:
            tmp.write(_FILE_HEADER.pack(CURSOR_MAGIC, WAL_VERSION))
            for (cid, fid), cursor in self._cursors.items():
                tmp.write(pack_frame(_CURSOR_ENTRY.pack(cid, fid, cursor)))
        self._stream.close()
        os.replace(tmp_path, self.path)
        self._stream = open(self.path, "r+b", buffering=0)
        self._stream.seek(0, os.SEEK_END)
        self._appended = len(self._cursors)

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "AckCursorStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def split_wal_frame(payload: bytes) -> list[bytes]:
    """Split one WAL frame payload into the wire messages it carries.

    A frame holds either a single message (announcements, scalar
    appends) or a whole burst concatenated back to back — one coalesced
    journal write per :meth:`PublisherWAL.append_batch`, one CRC over
    the lot.  PBIO headers carry their payload length, so the messages
    self-delimit; anything that does not parse cleanly to the frame's
    exact end is damage.
    """
    view = memoryview(payload)
    total = len(payload)
    offset = 0
    messages: list[bytes] = []
    while offset < total:
        header = enc.try_unpack_header(view[offset:])
        if header is None:
            raise MessageError(f"unparseable embedded message at offset {offset}")
        end = offset + enc.HEADER_SIZE + header[3]
        if end > total:
            raise MessageError(f"embedded message overruns frame at offset {offset}")
        messages.append(bytes(view[offset:end]))
        offset = end
    return messages


class PublisherWAL:
    """Crash-safe write-ahead log of sequenced frames awaiting acks.

    ``directory`` holds numbered segment files (``wal-<n>.seg``) of
    v2-framed wire messages — each entry is the *exact* ``MSG_DATA_SEQ``
    (or ``MSG_FORMAT``) message that travels, so recovery needs no
    re-encoding — plus an :class:`AckCursorStore` (``acked.cursors``)
    recording how far the subscribers have confirmed.  On open, every
    segment is scanned with torn-tail truncation; entries past the acked
    cursor rebuild the in-memory unacked backlog and the per-stream
    ``next_seq`` counters.

    Segments rotate at ``segment_bytes``; a rotation re-journals the
    live announcements first, so the newest segment always decodes
    standalone.  :meth:`ack` drops confirmed entries and deletes whole
    segments whose every entry is past its stream's cursor
    (``durable.segments_compacted``).

    ``directory=None`` runs the same sequencing and backlog machinery
    purely in memory — useful for tests and for measuring the journal's
    own overhead, but obviously not crash-safe.
    """

    def __init__(
        self,
        directory: str | None,
        *,
        segment_bytes: int = 1 << 20,
        metrics: Metrics | None = None,
    ):
        if segment_bytes < 4096:
            raise ValueError("segment_bytes must be >= 4096")
        self.directory = directory
        self.segment_bytes = segment_bytes
        self.metrics = metrics if metrics is not None else Metrics()
        #: per-stream unacked backlog, seq-ordered (appends are monotonic)
        self._unacked: dict[tuple[int, int], OrderedDict[int, bytes]] = {}
        self._next_seq: dict[tuple[int, int], int] = {}
        #: latest announcement per stream key, re-journaled on rotation
        self._announcements: dict[tuple[int, int], bytes] = {}
        #: (path, digest) per live segment; the digest is the highest
        #: data sequence per stream in that segment (appends are
        #: monotonic), which makes the fully-acked check in
        #: :meth:`compact` O(streams) instead of O(entries)
        self._segments: list[tuple[str, dict[tuple[int, int], int]]] = []
        self._stream: BinaryIO | None = None
        self._stream_bytes = 0
        self._segment_index = 0
        if directory is None:
            self.acked = AckCursorStore(None, metrics=self.metrics)
            return
        os.makedirs(directory, exist_ok=True)
        self.acked = AckCursorStore(
            os.path.join(directory, "acked.cursors"), metrics=self.metrics
        )
        names = sorted(n for n in os.listdir(directory) if n.startswith("wal-"))
        for name in names:
            self._load_segment(os.path.join(directory, name))
        if self._segments:
            # Reopen the newest segment for appending (unbuffered: every
            # append is already one coalesced write, and skipping the
            # userspace buffer makes it durable-to-the-OS as it returns).
            last_path = self._segments[-1][0]
            self._segment_index = int(
                os.path.basename(last_path).split("-")[1].split(".")[0]
            )
            self._stream = open(last_path, "r+b", buffering=0)
            self._stream.seek(0, os.SEEK_END)
            self._stream_bytes = self._stream.tell()
        else:
            self._open_segment()

    # -- disk layer ----------------------------------------------------------

    def _load_segment(self, path: str) -> None:
        stream, payloads = _open_framed(path, WAL_MAGIC, metrics=self.metrics, label="wal")
        stream.close()
        digest: dict[tuple[int, int], int] = {}
        for payload in payloads:
            try:
                messages = split_wal_frame(payload)
            except MessageError:
                self.metrics.inc("durable.wal_corrupt")
                continue
            for message in messages:
                header = enc.try_unpack_header(message)
                if header is None:
                    self.metrics.inc("durable.wal_corrupt")
                    continue
                if header[0] in (enc.MSG_FORMAT, enc.MSG_FORMAT_TOKEN):
                    key = (header[1], header[2])
                    self._announcements[key] = message
                    continue
                try:
                    cid, fid, seq, _record = enc.parse_data_seq(message)
                except PbioError:
                    self.metrics.inc("durable.wal_corrupt")
                    continue
                key = (cid, fid)
                digest[key] = max(seq, digest.get(key, 0))
                if seq >= self._next_seq.get(key, 1):
                    self._next_seq[key] = seq + 1
                if seq > self.acked.cursor(key):
                    self._unacked.setdefault(key, OrderedDict())[seq] = message
        self._segments.append((path, digest))

    def _open_segment(self) -> None:
        assert self.directory is not None
        self._segment_index += 1
        path = os.path.join(self.directory, f"wal-{self._segment_index:08d}.seg")
        stream = open(path, "w+b", buffering=0)
        stream.write(_FILE_HEADER.pack(WAL_MAGIC, WAL_VERSION))
        self._stream = stream
        self._stream_bytes = _FILE_HEADER.size
        self._segments.append((path, {}))
        # Self-contained segments: the live announcements travel into the
        # new file, so a compaction of older segments never strands the
        # format meta a recovered backlog needs to decode.
        for key, message in self._announcements.items():
            self._journal(message, key, 0)

    def _journal(self, message: bytes, key: tuple[int, int], seq: int) -> None:
        if self._stream is None:
            return
        frame = pack_frame(message)
        self._stream.write(frame)
        self._stream_bytes += len(frame)
        if seq:  # announcements (seq 0) never pin a segment
            self._segments[-1][1][key] = seq

    # -- write path ----------------------------------------------------------

    def next_seq(self, key: tuple[int, int]) -> int:
        """The sequence number the next record on ``key`` must carry."""
        return max(self._next_seq.get(key, 1), self.acked.cursor(key) + 1)

    def announce(self, message: bytes) -> None:
        """Journal a format announcement for the stream it describes.

        Idempotent per (stream, bytes): re-announcing identical meta
        writes nothing.  The announcement is retransmitted ahead of the
        backlog by :meth:`unacked`, so a subscriber that never saw the
        original can still decode the recovered records.
        """
        header = enc.unpack_header(message)
        key = (header[1], header[2])
        if self._announcements.get(key) == bytes(message):
            return
        self._announcements[key] = bytes(message)
        self._journal(self._announcements[key], key, 0)

    def append(self, message: bytes) -> int:
        """Journal one ``MSG_DATA_SEQ`` message; returns its sequence.

        The caller must send the *same bytes* after this returns —
        journal-before-send is the whole crash-safety argument.
        """
        return self.append_batch([message])[0]

    def append_batch(self, messages) -> list[int]:
        """Journal a run of ``MSG_DATA_SEQ`` messages with one write.

        Each stream's sequences must be contiguous from its
        :meth:`next_seq`; the whole run lands in a single buffered
        write+flush, which is what makes burst durability cheap.
        Returns the sequences in message order.
        """
        if not messages:
            return []
        parsed: list[tuple[tuple[int, int], int, bytes]] = []
        expected: dict[tuple[int, int], int] = {}
        for message in messages:
            cid, fid, seq, _record = enc.parse_data_seq(message)
            key = (cid, fid)
            want = expected.get(key)
            if want is None:
                want = self.next_seq(key)
            if seq != want:
                raise MessageError(
                    f"stream {key} must journal sequence {want} next, got {seq}"
                )
            expected[key] = seq + 1
            parsed.append((key, seq, bytes(message)))
        return self._append_parsed(parsed)

    def _append_parsed(
        self, parsed: list[tuple[tuple[int, int], int, bytes]]
    ) -> list[int]:
        """Trusted append: the caller vouches the ``(key, seq, message)``
        triples are contiguous (:class:`DurablePublisher` builds them
        straight off :meth:`next_seq`, so re-parsing would be waste)."""
        if self._stream is not None:
            if self._stream_bytes >= self.segment_bytes:
                self._stream.close()
                self._open_segment()
                self.metrics.inc("durable.segments_rotated")
            # One frame for the whole burst (see split_wal_frame): one
            # CRC, one length check, one write.
            frame = pack_frame(b"".join(m for _, _, m in parsed))
            self._stream.write(frame)
            self._stream_bytes += len(frame)
            digest = self._segments[-1][1]
        else:
            digest = None
        seqs: list[int] = []
        for key, seq, message in parsed:
            if digest is not None:
                digest[key] = seq
            self._unacked.setdefault(key, OrderedDict())[seq] = message
            self._next_seq[key] = seq + 1
            seqs.append(seq)
        self.metrics.inc("durable.journaled", len(parsed))
        return seqs

    # -- ack path ------------------------------------------------------------

    def ack(self, key: tuple[int, int], cursor: int) -> int:
        """Confirm every sequence on ``key`` up to ``cursor`` inclusive.

        Returns how many backlog entries that released; persists the
        cursor and compacts any segment now fully confirmed.
        """
        if not self.acked.advance(key, cursor):
            return 0
        backlog = self._unacked.get(key)
        released = 0
        if backlog is not None:
            while backlog and next(iter(backlog)) <= cursor:
                backlog.popitem(last=False)
                released += 1
            if not backlog:
                del self._unacked[key]
        self.compact()
        return released

    def get(self, key: tuple[int, int], seq: int) -> bytes | None:
        """The journaled message for one unacked sequence, if still held."""
        backlog = self._unacked.get(key)
        return backlog.get(seq) if backlog is not None else None

    def announcements(self) -> list[bytes]:
        """The live announcement messages, one per journaled stream."""
        return list(self._announcements.values())

    def unacked(self, key: tuple[int, int] | None = None) -> list[bytes]:
        """Every unacked message (one stream or all), announcements first.

        This is the retransmission set.  For one stream: its
        announcement, then its backlog in sequence order.  For all
        streams (``key=None``, the full after-restart resend): *every*
        journaled announcement — even for streams whose backlog is fully
        acked, so a restarted relay or cold subscriber relearns the
        format meta — then each backlog in sequence order.
        """
        if key is not None:
            backlog = self._unacked.get(key)
            if not backlog:
                return []
            out = []
            announcement = self._announcements.get(key)
            if announcement is not None:
                out.append(announcement)
            out.extend(backlog.values())
            return out
        out = list(self._announcements.values())
        for k in sorted(self._unacked):
            out.extend(self._unacked[k].values())
        return out

    @property
    def unacked_count(self) -> int:
        return sum(len(b) for b in self._unacked.values())

    def compact(self) -> int:
        """Delete segments whose every entry is past its acked cursor.

        The active (newest) segment is never deleted — rotation retires
        it first.  Returns the number of segments removed.
        """
        if self.directory is None or len(self._segments) <= 1:
            return 0
        removed = 0
        survivors: list[tuple[str, dict[tuple[int, int], int]]] = []
        for path, digest in self._segments[:-1]:
            if all(seq <= self.acked.cursor(key) for key, seq in digest.items()):
                os.remove(path)
                removed += 1
                self.metrics.inc("durable.segments_compacted")
            else:
                survivors.append((path, digest))
        self._segments = survivors + self._segments[-1:]
        return removed

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None
        self.acked.close()

    def __enter__(self) -> "PublisherWAL":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SequenceWindow:
    """Receiver-side dedup and reordering over sequenced streams.

    Per stream: a cumulative *cursor* (highest sequence delivered
    contiguously) plus a bounded buffer of out-of-order arrivals.  A
    frame at or below the cursor — or already buffered — is a duplicate;
    a frame more than ``window`` ahead is refused (the publisher's
    retransmission machinery will offer it again once the gap closes).
    Delivery is two-phase so a crash or handler failure between receipt
    and processing redelivers instead of losing: :meth:`offer` admits,
    :meth:`next_ready` peeks the next in-order frame, and
    :meth:`commit` consumes it and advances the cursor.
    """

    def __init__(self, window: int = 1024, *, metrics: Metrics | None = None):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.metrics = metrics if metrics is not None else Metrics()
        self._cursors: dict[tuple[int, int], int] = {}
        self._pending: dict[tuple[int, int], dict[int, Any]] = {}

    def seed(self, key: tuple[int, int], cursor: int) -> None:
        """Adopt a persisted cursor (resume after restart)."""
        if cursor > self._cursors.get(key, 0):
            self._cursors[key] = cursor

    def cursor(self, key: tuple[int, int]) -> int:
        return self._cursors.get(key, 0)

    def offer(self, key: tuple[int, int], seq: int, item: Any) -> str:
        """Admit one frame; returns ``"ready" | "buffered" | "duplicate" |
        "refused"``.  ``"ready"`` means :meth:`next_ready` now has work."""
        cursor = self._cursors.get(key, 0)
        if seq <= cursor:
            self.metrics.inc("durable.duplicates_dropped")
            return "duplicate"
        pending = self._pending.setdefault(key, {})
        if seq in pending:
            self.metrics.inc("durable.duplicates_dropped")
            return "duplicate"
        if seq - cursor > self.window:
            # Beyond the reorder horizon: refusing keeps the buffer
            # bounded, and at-least-once redelivery makes refusal safe.
            self.metrics.inc("durable.window_refused")
            return "refused"
        pending[seq] = item
        if seq == cursor + 1:
            return "ready"
        self.metrics.inc("durable.reordered")
        return "buffered"

    def next_ready(self, key: tuple[int, int]) -> tuple[int, Any] | None:
        """The next in-order frame, without consuming it."""
        pending = self._pending.get(key)
        if not pending:
            return None
        seq = self._cursors.get(key, 0) + 1
        item = pending.get(seq)
        return (seq, item) if seq in pending else None

    def commit(self, key: tuple[int, int], seq: int) -> None:
        """Consume one delivered frame and advance the cursor to it."""
        cursor = self._cursors.get(key, 0)
        if seq != cursor + 1:
            raise MessageError(f"cannot commit {seq} at cursor {cursor} on {key}")
        self._cursors[key] = seq
        pending = self._pending.get(key)
        if pending is not None:
            pending.pop(seq, None)
            if not pending:
                del self._pending[key]

    def missing(self, key: tuple[int, int]) -> tuple[int, int] | None:
        """``(nack_base, bitmap)`` describing the gap, or None if none.

        Bit *i* set means sequence ``nack_base + i`` has not arrived even
        though something later has — exactly the selective-nack payload
        of ``MSG_ACK``.  Only the first 64 sequences past the cursor are
        described; cumulative acking repairs anything beyond.
        """
        pending = self._pending.get(key)
        if not pending:
            return None
        base = self._cursors.get(key, 0) + 1
        top = max(pending)
        bits = 0
        for i in range(min(64, top - base + 1)):
            if base + i not in pending:
                bits |= 1 << i
        return (base, bits) if bits else None

    def pending_count(self, key: tuple[int, int] | None = None) -> int:
        if key is not None:
            return len(self._pending.get(key, ()))
        return sum(len(p) for p in self._pending.values())


class DurablePublisher:
    """A journal-before-send publishing endpoint on an event channel.

    Wraps :class:`~repro.net.channel.ChannelPublisher`: announcements and
    their token/inline fallback ladder are unchanged, but every record
    goes out as a ``MSG_DATA_SEQ`` frame that was appended to the
    :class:`PublisherWAL` *first*.  Ack frames entering the channel
    (:meth:`EventChannel.ingest` routes them) advance the WAL cursor and
    trigger selective retransmission for nacked gaps; :meth:`resend_unacked`
    replays the whole surviving backlog — announcements first — after a
    restart or reconnect.

    Exactly-once across restarts additionally needs a stable
    ``context_id`` on ``ctx`` (otherwise a restarted publisher starts a
    *new* stream; nothing is lost or duplicated, but continuity of the
    sequence numbering is).
    """

    def __init__(
        self,
        channel: EventChannel,
        ctx: IOContext,
        *,
        wal_dir: str | None = None,
        wal: PublisherWAL | None = None,
        segment_bytes: int = 1 << 20,
    ):
        self.channel = channel
        self.ctx = ctx
        self.metrics = Metrics()
        self.stats = DurableStats(self.metrics)
        if wal is not None:
            self.wal = wal
            self.wal.metrics = self.metrics
        else:
            self.wal = PublisherWAL(
                wal_dir, segment_bytes=segment_bytes, metrics=self.metrics
            )
        self._inner = ChannelPublisher(channel, ctx)
        channel.add_ack_listener(self._on_ack)

    def publish(self, handle: FormatHandle, record: dict[str, Any]) -> int:
        """Encode, journal, sequence and publish one record; returns its
        sequence number."""
        return self.publish_native(handle, handle.codec.encode(record))

    def publish_native(self, handle: FormatHandle, native) -> int:
        key = (self.ctx.context_id, handle.format_id)
        if handle.format_id not in self._inner._announced:
            # The channel announcement ladder runs as usual; the WAL
            # additionally journals the *inline* meta form so recovered
            # backlogs are decodable with no format service in sight.
            self._inner._announce(handle)
            self._inner._announced.add(handle.format_id)
            self.wal.announce(self.ctx.announce(handle))
        seq = self.wal.next_seq(key)
        message = enc.encode_data_seq(key[0], key[1], seq, native)
        self.wal.append(message)  # journal-before-send
        self.channel._publish_message(message)
        self.metrics.inc("durable.sent")
        return seq

    def publish_batch(self, handle: FormatHandle, records) -> list[int]:
        """Encode, journal and publish a burst; returns its sequences.

        The whole burst is journaled in one WAL write and fanned out via
        the channel's batch path, so per-record durability cost amortises
        to near the plain fast path."""
        codec = handle.codec
        return self.publish_native_batch(handle, [codec.encode(r) for r in records])

    def publish_native_batch(self, handle: FormatHandle, natives) -> list[int]:
        if not natives:
            return []
        key = (self.ctx.context_id, handle.format_id)
        if handle.format_id not in self._inner._announced:
            self._inner._announce(handle)
            self._inner._announced.add(handle.format_id)
            self.wal.announce(self.ctx.announce(handle))
        base = self.wal.next_seq(key)
        messages = [
            enc.encode_data_seq(key[0], key[1], base + i, native)
            for i, native in enumerate(natives)
        ]
        # journal-before-send; trusted path — seqs contiguous by construction
        self.wal._append_parsed(
            [(key, base + i, m) for i, m in enumerate(messages)]
        )
        self.channel._publish_batch(messages)
        self.metrics.inc("durable.sent", len(messages))
        return list(range(base, base + len(messages)))

    def _on_ack(self, message: bytes) -> None:
        try:
            cid, fid, cursor, nack_base, nack_bits = enc.parse_ack(message)
        except PbioError:
            return  # a malformed ack cannot be safely attributed
        if cid != self.ctx.context_id:
            return  # another publisher's stream on the same channel
        self.metrics.inc("durable.acks_received")
        key = (cid, fid)
        released = self.wal.ack(key, cursor)
        if released:
            self.metrics.inc("durable.acked", released)
        if nack_base:
            for i in range(64):
                if not nack_bits >> i & 1:
                    continue
                held = self.wal.get(key, nack_base + i)
                if held is not None:
                    self.channel._publish_message(held)
                    self.metrics.inc("durable.retransmitted")

    def resend_unacked(self) -> int:
        """Republish the surviving backlog (announcements first); the
        receivers' dedup windows absorb anything that did arrive."""
        backlog = self.wal.unacked()
        for message in backlog:
            self.channel._publish_message(message)
        retransmitted = sum(
            1 for m in backlog if enc.message_kind(m) == enc.MSG_DATA_SEQ
        )
        if retransmitted:
            self.metrics.inc("durable.retransmitted", retransmitted)
        return retransmitted

    @property
    def unacked_count(self) -> int:
        return self.wal.unacked_count

    def close(self) -> None:
        self.channel.remove_ack_listener(self._on_ack)
        self.wal.close()

    def __enter__(self) -> "DurablePublisher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class DurableSubscription(Subscription):
    """An exactly-once-observed subscriber on an event channel.

    Sequenced frames pass through a :class:`SequenceWindow` before the
    ordinary screen-filter-decode-handle path: duplicates are absorbed
    (and re-acked, so a retransmitting publisher converges), gaps are
    buffered and nacked, and each in-order record is committed — cursor
    persisted via :class:`AckCursorStore` when ``cursor_path`` is given —
    only *after* the handler returns.  A crash between receipt and
    handling therefore redelivers; a crash after handling re-acks.
    Non-sequenced traffic (announcements, plain data) behaves exactly as
    on a plain :class:`~repro.net.channel.Subscription`.

    ``ack_sink`` is where ``MSG_ACK`` frames go: by default the owning
    channel's :meth:`~EventChannel.route_ack` (in-process publishers);
    wire subscribers pass their transport's ``send`` so acks ride the
    back-channel to the relay/publisher.
    """

    def __init__(
        self,
        channel: EventChannel,
        ctx: IOContext,
        handler: Callable[[dict[str, Any]], None],
        *,
        cursor_path: str | None = None,
        format_name: str | None = None,
        filter_expr: str | None = None,
        on_error: str = "raise",
        window: int = 1024,
        ack_sink: Callable[[bytes], None] | None = None,
    ):
        if channel.cache is not None:
            ctx.use_cache(channel.cache)
        if channel.format_service is not None and ctx.format_service is None:
            ctx.use_format_service(channel.format_service)
        super().__init__(
            ctx, handler, format_name=format_name, filter_expr=filter_expr, on_error=on_error
        )
        self.channel = channel
        self.stats_durable = DurableStats(self.metrics)
        self.cursors = AckCursorStore(cursor_path, metrics=self.metrics)
        self.window = SequenceWindow(window, metrics=self.metrics)
        for key, cursor in self.cursors.cursors().items():
            self.window.seed(key, cursor)
        self._ack_sink = ack_sink if ack_sink is not None else channel.route_ack
        channel._attach(self)

    # -- delivery ------------------------------------------------------------

    def _offer(self, message: bytes) -> None:
        header = enc.try_unpack_header(message)
        if header is None or header[0] != enc.MSG_DATA_SEQ:
            super()._offer(message)
            return
        try:
            cid, fid, seq, _record = enc.parse_data_seq(message)
        except PbioError:
            self.metrics.inc("decode_errors")
            raise
        key = (cid, fid)
        outcome = self.window.offer(key, seq, bytes(message))
        if outcome == "refused":
            # Re-ack so a publisher retransmitting into the void converges.
            self._send_ack(key)
            return
        # Duplicates also drain: a retransmit of a frame still *pending*
        # (its first delivery attempt failed) is the retry — and when
        # nothing is ready the drain degenerates to the re-ack above.
        self._drain(key)

    def _drain(self, key: tuple[int, int]) -> None:
        """Deliver every in-order pending frame, committing one by one.

        The on-disk cursor is persisted once per drain (covering the
        committed prefix), *before* the ack goes out — so everything
        acked is persisted, and a crash mid-drain merely redelivers the
        uncommitted tail."""
        try:
            while True:
                ready = self.window.next_ready(key)
                if ready is None:
                    break
                seq, message = ready
                _seq, data = enc.seq_to_data(message)
                try:
                    super()._offer(data)
                except Exception:
                    if self.error_policy == "raise":
                        # Not committed: the frame stays pending and the
                        # publisher's retransmission retries it — the
                        # at-least-once half of exactly-once-observed.
                        raise
                    # suppress/detach consume the record (it was counted
                    # by Subscription's own error metrics) and move on.
                    self.window.commit(key, seq)
                    if self.error_policy == "detach":
                        raise
                    continue
                self.window.commit(key, seq)
        finally:
            self.cursors.advance(key, self.window.cursor(key))
            self._send_ack(key)

    def _offer_batch(self, messages: list[bytes], suppress: bool, lease=None) -> None:
        """Burst delivery: window the sequenced frames, drain per stream.

        Under the ``"raise"`` policy the scalar loop runs instead — a
        failed batch decode cannot identify its delivered prefix, and
        strict accounting (commit only after the handler returns) is the
        point of that policy.  Otherwise every sequenced frame is offered
        to the window first, non-sequenced traffic takes the base batch
        path, and each touched stream drains its ready run through one
        batch decode, one cursor persist and one ack.  Sequenced frames
        are copied into the replay window regardless, so a borrowed
        ``lease`` only follows the passthrough traffic.
        """
        if self.error_policy == "raise":
            for message in messages:
                self._offer(message)
            return
        touched: dict[tuple[int, int], None] = {}
        passthrough: list[bytes] = []
        for message in messages:
            header = enc.try_unpack_header(message)
            if header is None or header[0] != enc.MSG_DATA_SEQ:
                passthrough.append(message)
                continue
            try:
                cid, fid, seq, _record = enc.parse_data_seq(message)
            except PbioError:
                self.metrics.inc("decode_errors")
                continue
            key = (cid, fid)
            self.window.offer(key, seq, bytes(message))
            touched[key] = None
        if passthrough:
            super()._offer_batch(passthrough, suppress, lease)
        for key in touched:
            self._drain_batch(key, suppress)

    def _drain_batch(self, key: tuple[int, int], suppress: bool) -> None:
        """Deliver the whole ready run as one batch (suppress/detach).

        Records are committed *before* delivery here: these policies
        consume a failed record anyway, so the strict commit-after-
        handler ordering of :meth:`_drain` buys nothing, and committing
        up front lets the run decode in one pipeline batch."""
        try:
            run: list[bytes] = []
            while True:
                ready = self.window.next_ready(key)
                if ready is None:
                    break
                seq, message = ready
                run.append(enc.seq_to_data(message)[1])
                self.window.commit(key, seq)
            if run:
                super()._offer_batch(run, suppress)
        finally:
            self.cursors.advance(key, self.window.cursor(key))
            self._send_ack(key)

    def _send_ack(self, key: tuple[int, int]) -> None:
        cid, fid = key
        gap = self.window.missing(key)
        nack_base, nack_bits = gap if gap is not None else (0, 0)
        ack = enc.encode_ack(
            cid, fid, self.window.cursor(key), nack_base=nack_base, nack_bits=nack_bits
        )
        self.metrics.inc("durable.acks_sent")
        if nack_base:
            self.metrics.inc("durable.nacks_sent")
        try:
            self._ack_sink(ack)
        except Exception:
            # A lost ack only delays compaction; the next delivery (or a
            # retransmit-triggered re-ack) carries the same cursor again.
            self.metrics.inc("durable.ack_send_errors")

    def ack_cursor(self, key: tuple[int, int]) -> int:
        return self.window.cursor(key)

    def close(self) -> None:
        if self in self.channel._subscribers:
            self.channel.unsubscribe(self)
        self.cursors.close()

    def __enter__(self) -> "DurableSubscription":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
