"""Deterministic fault injection and recovery for transports.

The paper's closing vision — relays and "communication co-processors"
forwarding NDR streams between loosely-coupled components — only works
in production if the system tolerates misbehaving links.  This module
supplies both halves of that story:

* **Chaos**: :class:`FaultInjectingTransport` wraps any
  :class:`~repro.net.transport.Transport` and injects message drop,
  truncation, byte corruption, duplicated delivery, delayed (virtual
  time) delivery, mid-stream disconnects and process crashes (buffered
  frames lost wholesale), each with its own probability.  Every random decision comes from one seeded
  :func:`numpy.random.default_rng` stream, so a chaos run is exactly
  reproducible from ``(seed, plan, message sequence)`` — the property
  the CI chaos job relies on.

* **Recovery**: :class:`RetryPolicy` (exponential backoff with
  deterministic jitter and a deadline budget) and
  :class:`ReconnectingTransport`, which re-establishes a link through a
  dial callback and replays PBIO format announcements so the
  meta-information protocol survives reconnects (a late-dialled link is
  exactly a "late joiner" in the paper's sense).

Faults are injected on the *send* path: the wrapped sender's peer
observes the degraded stream, which is where PBIO's protocol-level
robustness (``tests/core/test_robustness.py``) must hold.  At most one
fault is applied per message — the first matching draw in the fixed
order disconnect, drop, truncate, corrupt, duplicate, delay — so
per-fault counters always sum to the number of perturbed messages.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from repro.core import encoder as enc
from repro.core.runtime import Metrics

from .transport import PeerClosedError, Transport, TransportError, TransportTimeout

#: Fixed draw order; index into the per-message uniform vector.
_FAULTS = ("disconnect", "drop", "truncate", "corrupt", "duplicate", "delay")

# Header constants, hoisted: the announcement sniff runs on every send.
_HEADER_SIZE = enc.HEADER_SIZE
_MAGIC = enc.MAGIC
_VERSION = enc.VERSION
_MSG_FORMAT = enc.MSG_FORMAT
_MSG_FORMAT_TOKEN = enc.MSG_FORMAT_TOKEN
_MSG_PING = enc.MSG_PING
_MSG_PONG = enc.MSG_PONG

#: Frame-class-targeted drops (drawn after the main vector, and only
#: when their probability is non-zero, so plans that don't use them
#: replay byte-identically against older recorded chaos schedules).
_CLASSIFIED = ("drop_heartbeats", "drop_payload")

#: Process-death simulation (drawn last, same only-when-enabled rule).
_CRASH = ("crash",)


@dataclass(frozen=True)
class FaultPlan:
    """Per-message fault probabilities (each in ``[0, 1]``, independent).

    ``max_delay_messages`` bounds how many *subsequent* sends a delayed
    message may slip past before it is released (virtual time measured
    in messages, so delay is deterministic and sleep-free).

    ``drop_heartbeats`` and ``drop_payload`` are *frame-class-targeted*
    drops for exercising the liveness plane (docs/robustness.md §9):
    the first swallows only ``MSG_PING``/``MSG_PONG`` control frames (a
    peer that computes but never answers probes), the second only
    everything else (a link that carries heartbeats yet loses data — the
    failure mode a naive "is the ping answered?" check misses).

    ``crash`` simulates *process death* rather than link failure: every
    buffered frame (delayed messages included) is discarded, the link is
    severed, and the send raises
    :class:`~repro.net.transport.PeerClosedError` — the failure the
    durable delivery plane (docs/robustness.md §11) must mask.  Unlike
    ``disconnect``, nothing in flight survives to be flushed later.
    """

    drop: float = 0.0
    truncate: float = 0.0
    corrupt: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    disconnect: float = 0.0
    drop_heartbeats: float = 0.0
    drop_payload: float = 0.0
    crash: float = 0.0
    max_delay_messages: int = 4

    def __post_init__(self) -> None:
        for name in _FAULTS + _CLASSIFIED + _CRASH:
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"fault probability {name}={p} outside [0, 1]")
        if self.max_delay_messages < 1:
            raise ValueError("max_delay_messages must be >= 1")

    @property
    def active(self) -> bool:
        return any(getattr(self, name) > 0.0 for name in _FAULTS + _CLASSIFIED + _CRASH)

    @classmethod
    def lossy(cls, p: float) -> "FaultPlan":
        """Loss-only preset: drop/duplicate/delay, no byte damage."""
        return cls(drop=p, duplicate=p, delay=p)

    @classmethod
    def mute_heartbeats(cls, p: float = 1.0) -> "FaultPlan":
        """Swallow pings/pongs but deliver data untouched."""
        return cls(drop_heartbeats=p)

    @classmethod
    def mute_payload(cls, p: float = 1.0) -> "FaultPlan":
        """Deliver heartbeats but lose data frames."""
        return cls(drop_payload=p)


class FaultInjectingTransport(Transport):
    """Wrap a transport and perturb its send path per a :class:`FaultPlan`.

    With an all-zero plan the wrapper is *pure* delegation: ``send`` and
    ``recv`` are aliased to the inner transport's methods at construction
    time, so an always-wrapped deployment pays nothing until a fault
    probability is actually raised — the property
    ``benchmarks/bench_fault_overhead.py`` asserts.

    Injected-fault counts are recorded in :attr:`metrics` under
    ``faults.dropped``, ``faults.truncated``, ``faults.corrupted``,
    ``faults.duplicated``, ``faults.delayed`` and ``faults.disconnects``;
    ``messages`` counts every attempted send (active plans only).

    The wrapper composes with :class:`repro.net.aio.AsyncSocketTransport`
    unchanged — and with the *same* seeded per-message plans: faults are
    injected on the send path, and an async transport's sends are
    synchronous bounded-queue enqueues, so every draw lands exactly as
    it would on a blocking socket.  ``recv`` aliasing/delegation returns
    the inner coroutine for async inners (callers ``await`` it);
    :meth:`drain`, :attr:`write_queue_depth` and :meth:`poll_recv`
    delegate so async handlers can apply backpressure — and the health
    plane its liveness probes — through the wrapper.
    """

    def __init__(
        self,
        inner: Transport,
        plan: FaultPlan,
        *,
        seed: int = 0,
        metrics: Metrics | None = None,
    ):
        self._inner = inner
        self.plan = plan
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._active = plan.active
        self.metrics = metrics or Metrics()
        self._seq = 0  # virtual clock: one tick per send() call
        self._held: list[tuple[int, bytes]] = []  # (release_seq, message)
        self._broken = False
        if not self._active:
            # Zero-cost happy path: bypass the wrapper methods entirely.
            # (getattr: duck-typed links predating the batch API still work
            # — the base-class loops over the aliased send/recv cover them.)
            self.send = inner.send  # type: ignore[method-assign]
            self.recv = inner.recv  # type: ignore[method-assign]
            inner_send_many = getattr(inner, "send_many", None)
            if inner_send_many is not None:
                self.send_many = inner_send_many  # type: ignore[method-assign]
            inner_recv_many = getattr(inner, "recv_many", None)
            if inner_recv_many is not None:
                self.recv_many = inner_recv_many  # type: ignore[method-assign]
            inner_poll_recv = getattr(inner, "poll_recv", None)
            if inner_poll_recv is not None:
                self.poll_recv = inner_poll_recv  # type: ignore[method-assign]

    @property
    def inner(self) -> Transport:
        return self._inner

    @property
    def broken(self) -> bool:
        """True once an injected disconnect has severed the link."""
        return self._broken

    # -- faulted send path ---------------------------------------------------

    def send(self, payload) -> None:
        if self._broken:
            raise TransportError("send on disconnected transport (injected)")
        data = bytes(payload)
        self._seq += 1
        self.metrics.inc("messages")
        self._release_due()
        if not self._active:
            self._inner.send(data)
            return
        # One uniform vector per message regardless of which faults are
        # enabled: the decision sequence for a seed is stable under plan
        # changes, so a chaos failure can be replayed with more faults off.
        draw = self._rng.random(len(_FAULTS))
        # Classified draws happen *after* the main vector and only when
        # enabled, per message (not per matching frame), so the stream
        # layout for a given plan is independent of the frame mix.
        hb_draw = float(self._rng.random()) if self.plan.drop_heartbeats > 0.0 else 1.0
        pl_draw = float(self._rng.random()) if self.plan.drop_payload > 0.0 else 1.0
        # The crash draw comes last (same only-when-enabled rule) and is
        # checked first: a dead process does nothing else to the message.
        crash_draw = float(self._rng.random()) if self.plan.crash > 0.0 else 1.0
        if crash_draw < self.plan.crash:
            self.crash()
        is_heartbeat = (
            len(data) >= _HEADER_SIZE
            and (data[2] == _MSG_PING or data[2] == _MSG_PONG)
            and data[0] == _MAGIC
            and data[1] == _VERSION
        )
        if is_heartbeat and hb_draw < self.plan.drop_heartbeats:
            self.metrics.inc("faults.heartbeats_dropped")
            return
        if not is_heartbeat and pl_draw < self.plan.drop_payload:
            self.metrics.inc("faults.payload_dropped")
            return
        if draw[0] < self.plan.disconnect:
            self.metrics.inc("faults.disconnects")
            self._broken = True
            self._inner.close()  # peer sees PeerClosedError: a real hangup
            raise TransportError("mid-stream disconnect (injected)")
        if draw[1] < self.plan.drop:
            self.metrics.inc("faults.dropped")
            return
        if draw[2] < self.plan.truncate:
            self.metrics.inc("faults.truncated")
            keep = int(self._rng.integers(0, len(data))) if data else 0
            self._inner.send(data[:keep])
            return
        if draw[3] < self.plan.corrupt:
            self.metrics.inc("faults.corrupted")
            corrupted = bytearray(data)
            if corrupted:
                pos = int(self._rng.integers(0, len(corrupted)))
                corrupted[pos] ^= int(self._rng.integers(1, 256))
            self._inner.send(bytes(corrupted))
            return
        if draw[4] < self.plan.duplicate:
            self.metrics.inc("faults.duplicated")
            self._inner.send(data)
            self._inner.send(data)
            return
        if draw[5] < self.plan.delay:
            self.metrics.inc("faults.delayed")
            slip = int(self._rng.integers(1, self.plan.max_delay_messages + 1))
            self._held.append((self._seq + slip, data))
            return
        self._inner.send(data)

    def crash(self) -> None:
        """Simulate process death, deterministically (also called by the
        seeded ``crash`` draw).

        Every held frame — the delayed-delivery buffer, i.e. everything
        "in this process" rather than on the wire — is discarded, the
        inner link is closed so the peer sees a real hangup, and
        :class:`~repro.net.transport.PeerClosedError` is raised.  Counted
        as ``faults.crashes``.
        """
        self.metrics.inc("faults.crashes")
        self._held.clear()  # frames inside the dead process are gone
        self._broken = True
        self._inner.close()
        raise PeerClosedError("process crash (injected)")

    def _release_due(self) -> None:
        if not self._held:
            return
        due = [(rel, m) for rel, m in self._held if rel <= self._seq]
        if not due:
            return
        self._held = [(rel, m) for rel, m in self._held if rel > self._seq]
        for _, message in sorted(due, key=lambda item: item[0]):
            self._inner.send(message)

    def flush(self) -> None:
        """Release every delayed message still held (in slip order)."""
        held, self._held = self._held, []
        for _, message in sorted(held, key=lambda item: item[0]):
            if not self._broken:
                self._inner.send(message)

    def send_many(self, frames) -> None:
        """Faults apply per *logical frame*, not per syscall: a batch of N
        frames draws N decision vectors, so a chaos schedule is identical
        whether the sender batched or looped ``send`` — the byte-identity
        property tests rely on this."""
        for payload in frames:
            self.send(payload)

    # -- pass-through --------------------------------------------------------

    def recv(self) -> bytes:
        if self._broken:
            raise TransportError("recv on disconnected transport (injected)")
        return self._inner.recv()

    def recv_many(self, max_frames: int = 0) -> list[bytes]:
        if self._broken:
            raise TransportError("recv on disconnected transport (injected)")
        inner_recv_many = getattr(self._inner, "recv_many", None)
        if inner_recv_many is None:
            return [self._inner.recv()]
        return inner_recv_many(max_frames)

    def poll_recv(self) -> bytes | None:
        """Delegate the health plane's non-blocking probe to the inner
        link (faults here are send-side; the receive path is honest)."""
        if self._broken:
            raise TransportError("recv on disconnected transport (injected)")
        inner_poll_recv = getattr(self._inner, "poll_recv", None)
        if inner_poll_recv is None:
            return None
        return inner_poll_recv()

    def set_timeout(self, timeout_s: float | None) -> None:
        self._inner.set_timeout(timeout_s)

    @property
    def write_queue_depth(self) -> int:
        """Bytes queued in the inner transport (0 for unqueued inners)."""
        return getattr(self._inner, "write_queue_depth", 0)

    async def drain(self) -> None:
        """Await the inner transport's write queue (no-op for sync inners)."""
        inner_drain = getattr(self._inner, "drain", None)
        if inner_drain is not None:
            await inner_drain()

    def close(self) -> None:
        if not self._broken:
            self.flush()
        self._inner.close()


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter and a deadline budget.

    The jitter stream is seeded (``jitter_seed``) so two runs of the same
    retrying operation sleep for identical durations — chaos tests assert
    on exact schedules.  ``deadline_s`` bounds the *total* time budget
    (work plus backoff); when the budget cannot cover the next backoff
    the policy gives up with :class:`TransportTimeout` rather than
    oversleeping the deadline.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.01
    multiplier: float = 2.0
    max_delay_s: float = 1.0
    deadline_s: float | None = None
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def backoffs(self) -> Iterator[float]:
        """The sleep before each retry (``max_attempts - 1`` values)."""
        rng = np.random.default_rng(self.jitter_seed)
        delay = self.base_delay_s
        for _ in range(self.max_attempts - 1):
            # Decorrelated half-jitter: uniform in [delay/2, delay].
            yield min(delay, self.max_delay_s) * (0.5 + 0.5 * float(rng.random()))
            delay *= self.multiplier

    def run(
        self,
        fn: Callable[[], object],
        *,
        retry_on: tuple[type[BaseException], ...] = (TransportError,),
        on_retry: Callable[[int, BaseException, float], None] | None = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
        deadline_s: float | None = None,
    ):
        """Call ``fn`` until it succeeds, backing off between attempts.

        ``deadline_s`` overrides the policy's own field for this run.
        Non-retryable exceptions (an :class:`RpcFault`, a protocol
        ``PbioError``) propagate immediately.
        """
        budget = self.deadline_s if deadline_s is None else deadline_s
        start = clock()
        backoffs = self.backoffs()
        attempt = 0
        while True:
            attempt += 1
            try:
                return fn()
            except retry_on as exc:
                try:
                    backoff = next(backoffs)
                except StopIteration:
                    raise exc from None
                if budget is not None and clock() - start + backoff > budget:
                    raise TransportTimeout(
                        f"retry deadline {budget}s exhausted after "
                        f"{attempt} attempt(s)"
                    ) from exc
                if on_retry is not None:
                    on_retry(attempt, exc, backoff)
                sleep(backoff)


class ReconnectingTransport(Transport):
    """A transport that survives link failures by re-dialling.

    ``dial`` returns a fresh connected :class:`Transport`; any
    :class:`TransportError` from the current link triggers close →
    backoff (per ``policy``) → re-dial → replay of every PBIO format
    announcement previously sent → retry of the failed operation.
    Replay matters because PBIO's meta-information protocol sends each
    format's meta message once per link: a reconnected peer is a brand
    new link that has seen none of them (docs/robustness.md §4).

    Counters in :attr:`metrics`: ``reconnects``,
    ``announcements_replayed``, ``dial_failures``.
    """

    def __init__(
        self,
        dial: Callable[[], Transport],
        *,
        policy: RetryPolicy | None = None,
        on_reconnect: Callable[[Transport], None] | None = None,
        sleep: Callable[[float], None] = time.sleep,
        metrics: Metrics | None = None,
    ):
        self._dial = dial
        self.policy = policy or RetryPolicy()
        self.on_reconnect = on_reconnect
        self._sleep = sleep
        self.metrics = metrics or Metrics()
        self._announced: list[bytes] = []
        self._announced_set: set[bytes] = set()
        #: Incarnation counter: bumped on every successful re-dial.
        #: Protocol layers key per-link state (announcement dedup, RPC
        #: negotiators) by ``(transport_token, generation)`` so a fresh
        #: link is never mistaken for the one that died.
        self.generation = 0
        self._timeout_s: float | None = None
        self._transport = self._checked_dial()
        # Bound-method caches for the happy path (refreshed on reconnect).
        self._inner_send = self._transport.send
        self._inner_recv = self._transport.recv

    @property
    def transport(self) -> Transport:
        """The currently connected underlying transport."""
        return self._transport

    def _checked_dial(self) -> Transport:
        try:
            transport = self._dial()
        except TransportError:
            self.metrics.inc("dial_failures")
            raise
        except Exception as exc:
            self.metrics.inc("dial_failures")
            raise TransportError(f"dial failed: {exc!r}") from exc
        if self._timeout_s is not None:
            transport.set_timeout(self._timeout_s)
        return transport

    def _reconnect(self) -> None:
        try:
            self._transport.close()
        except TransportError:
            pass
        self._transport = self._checked_dial()
        self._inner_send = self._transport.send
        self._inner_recv = self._transport.recv
        self.generation += 1
        self.metrics.inc("reconnects")
        for announcement in self._announced:
            self._transport.send(announcement)
            self.metrics.inc("announcements_replayed")
        if self.on_reconnect is not None:
            self.on_reconnect(self._transport)

    # -- Transport interface -------------------------------------------------
    #
    # The happy path is a single inline try — no closure allocation, no
    # payload copy — so a stable link pays only the announcement sniff
    # (three byte compares); bench_fault_overhead.py holds this to <=5%.

    def send(self, payload) -> None:
        # Ordered so the common case (a data message) falls through after
        # two checks: byte 2 is MSG_DATA for everything but announcements.
        if (
            len(payload) >= _HEADER_SIZE
            and (payload[2] == _MSG_FORMAT or payload[2] == _MSG_FORMAT_TOKEN)
            and payload[0] == _MAGIC
            and payload[1] == _VERSION
        ):
            data = bytes(payload)
            if data not in self._announced_set:
                self._announced.append(data)
                self._announced_set.add(data)
        try:
            self._inner_send(payload)
            return
        except TransportError:
            data = bytes(payload)  # pin: caller may reuse its buffer

        def redial_and_send():
            self._reconnect()
            self._transport.send(data)

        self.policy.run(redial_and_send, sleep=self._sleep)

    def recv(self) -> bytes:
        try:
            return self._inner_recv()
        except TransportError:
            pass

        def redial_and_recv():
            self._reconnect()
            return self._transport.recv()

        return self.policy.run(redial_and_recv, sleep=self._sleep)

    # send_many inherits the base per-frame loop deliberately: each frame
    # must pass the announcement sniff above so replay stays complete.

    def recv_many(self, max_frames: int = 0) -> list[bytes]:
        def recv_many_once():
            inner = getattr(self._transport, "recv_many", None)
            if inner is None:
                return [self._transport.recv()]
            return inner(max_frames)

        try:
            return recv_many_once()
        except TransportError:
            pass

        def redial_and_recv_many():
            self._reconnect()
            return recv_many_once()

        return self.policy.run(redial_and_recv_many, sleep=self._sleep)

    def set_timeout(self, timeout_s: float | None) -> None:
        self._timeout_s = timeout_s
        self._transport.set_timeout(timeout_s)

    def close(self) -> None:
        self._transport.close()
