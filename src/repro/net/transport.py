"""Transport abstraction: framed byte-message delivery.

Every wire-format system under test (PBIO, MPI-like, XML, IIOP) produces
byte messages; transports move them.  Frames are length-prefixed so stream
transports (TCP) preserve message boundaries.
"""

from __future__ import annotations

import struct
from abc import ABC, abstractmethod

#: 4-byte big-endian length prefix, like most RPC framings.
_LEN = struct.Struct(">I")

MAX_FRAME = 1 << 30


class TransportError(RuntimeError):
    pass


class Transport(ABC):
    """One endpoint of a duplex, message-oriented link."""

    @abstractmethod
    def send(self, payload: bytes | bytearray | memoryview) -> None:
        """Queue one message for the peer."""

    @abstractmethod
    def recv(self) -> bytes:
        """Receive the next message (blocking for real transports)."""

    @abstractmethod
    def close(self) -> None: ...

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    # Scatter-gather send: NDR senders hand the transport a header and the
    # application's own buffer, avoiding the copy a contiguous wire format
    # would force (the zero-copy claim of Section 1).
    def send_segments(self, segments: list[bytes | bytearray | memoryview]) -> None:
        self.send(b"".join(bytes(s) for s in segments))


def frame(payload: bytes | bytearray | memoryview) -> bytes:
    n = len(payload)
    if n > MAX_FRAME:
        raise TransportError(f"frame too large: {n}")
    return _LEN.pack(n) + bytes(payload)


def read_frame(read_exact) -> bytes:
    """Read one frame using ``read_exact(n) -> bytes``."""
    header = read_exact(4)
    (n,) = _LEN.unpack(header)
    if n > MAX_FRAME:
        raise TransportError(f"frame too large: {n}")
    return read_exact(n)


class InMemoryPipe:
    """A pair of in-process transports connected back to back.

    Useful for unit tests and for the simulated network: no kernel, no
    latency, just byte-faithful delivery with accounting of bytes moved.
    """

    def __init__(self) -> None:
        a_to_b: list[bytes] = []
        b_to_a: list[bytes] = []
        self.a = _PipeEnd(a_to_b, b_to_a)
        self.b = _PipeEnd(b_to_a, a_to_b)

    def endpoints(self) -> tuple["_PipeEnd", "_PipeEnd"]:
        return self.a, self.b


class _PipeEnd(Transport):
    def __init__(self, outbox: list[bytes], inbox: list[bytes]):
        self._outbox = outbox
        self._inbox = inbox
        self._closed = False
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages_sent = 0

    def send(self, payload) -> None:
        if self._closed:
            raise TransportError("send on closed transport")
        data = bytes(payload)
        self._outbox.append(data)
        self.bytes_sent += len(data)
        self.messages_sent += 1

    def recv(self) -> bytes:
        if not self._inbox:
            raise TransportError("recv on empty pipe (peer sent nothing)")
        data = self._inbox.pop(0)
        self.bytes_received += len(data)
        return data

    def pending(self) -> int:
        return len(self._inbox)

    def close(self) -> None:
        self._closed = True
