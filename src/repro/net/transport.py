"""Transport abstraction: framed byte-message delivery.

Every wire-format system under test (PBIO, MPI-like, XML, IIOP) produces
byte messages; transports move them.  Frames are length-prefixed so stream
transports (TCP) preserve message boundaries.

Error taxonomy (the fault-tolerance layer in :mod:`repro.net.faults`
keys retry decisions off it):

* :class:`TransportError` — the link failed; the *message stream* is
  suspect but the peer may come back.  Retryable.
* :class:`PeerClosedError` — the peer deliberately closed its end; no
  more messages will ever arrive.  Retryable only by re-dialling.
* :class:`TransportTimeout` — a blocking operation exceeded the
  transport's configured timeout.  Retryable.
* :class:`PeerUnresponsive` — the link looks up but the peer has stopped
  answering liveness probes (:mod:`repro.net.health`).  Retryable after
  the peer proves itself alive again.
"""

from __future__ import annotations

import itertools
import struct
from abc import ABC, abstractmethod
from collections import deque

#: 4-byte big-endian length prefix, like most RPC framings.
_LEN = struct.Struct(">I")

MAX_FRAME = 1 << 30


class TransportError(RuntimeError):
    pass


class PeerClosedError(TransportError):
    """The peer closed its end: distinguishable from a merely idle link."""


class TransportTimeout(TransportError):
    """A blocking send/recv exceeded the configured timeout."""


class WriteQueueFull(TransportError):
    """A bounded send queue rejected a frame: the peer is not draining.

    Raised by queueing transports (:class:`repro.net.aio.AsyncSocketTransport`)
    whose per-connection write queue is at capacity.  It is a
    :class:`TransportError` deliberately: fan-out layers (the relay) treat a
    persistently-full queue exactly like a broken link — count, report,
    quarantine — which is the slow-consumer eviction policy.
    """


class PeerUnresponsive(TransportError):
    """The peer missed too many consecutive liveness probes.

    Raised (or reported) by :class:`repro.net.health.HeartbeatMonitor`
    when ``miss_threshold`` pings go unanswered.  The socket may still be
    technically open — half-dead links are exactly what heartbeats
    exist to detect — so this is a verdict about the *peer*, not the
    local endpoint.  Probing (:class:`repro.net.health.ProbePolicy`)
    can later clear it.
    """


#: Monotonic ids for :func:`transport_token` (never recycled, unlike ``id()``).
_token_counter = itertools.count(1)


def transport_token(transport) -> int:
    """A process-unique, monotonic identity token for a transport.

    ``id()`` values recycle after garbage collection, so keying
    per-transport protocol state (e.g. "announcements already sent") by
    ``id(transport)`` lets a new transport silently inherit a dead one's
    state.  This token is assigned once per object and never reused.
    """
    token = getattr(transport, "_transport_token", None)
    if token is None:
        token = next(_token_counter)
        try:
            transport._transport_token = token
        except AttributeError:  # __slots__ without the attribute: fall back
            return id(transport)
    return token


class Transport(ABC):
    """One endpoint of a duplex, message-oriented link."""

    @abstractmethod
    def send(self, payload: bytes | bytearray | memoryview) -> None:
        """Queue one message for the peer."""

    @abstractmethod
    def recv(self) -> bytes:
        """Receive the next message (blocking for real transports)."""

    @abstractmethod
    def close(self) -> None: ...

    def set_timeout(self, timeout_s: float | None) -> None:
        """Bound blocking operations; exceeded → :class:`TransportTimeout`.

        Transports whose operations never block (the in-memory pipe)
        ignore this.
        """

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    # Scatter-gather send: NDR senders hand the transport a header and the
    # application's own buffer, avoiding the copy a contiguous wire format
    # would force (the zero-copy claim of Section 1).
    def send_segments(self, segments: list[bytes | bytearray | memoryview]) -> None:
        self.send(b"".join(bytes(s) for s in segments))

    # Batch framing: one call per *burst* instead of one per message.
    # The base implementations preserve per-message semantics exactly;
    # vectored transports (sockets) override them to coalesce syscalls.
    def send_many(self, frames: list) -> None:
        """Send many messages; equivalent to ``for f in frames: send(f)``."""
        for payload in frames:
            self.send(payload)

    def recv_many(self, max_frames: int = 0) -> list[bytes]:
        """Receive at least one message, plus any more already available.

        ``max_frames`` bounds the drain (0 = no bound).  The first message
        blocks exactly like :meth:`recv`; the rest are only taken if they
        cost no further blocking.  Base implementation returns a single
        message — buffered transports override to drain their backlog.
        """
        return [self.recv()]

    def poll_recv(self) -> bytes | None:
        """One message if immediately available, else ``None`` — never blocks.

        The health plane (:mod:`repro.net.health`) uses this to harvest
        pongs without committing a thread to a blocking ``recv``.  The
        base implementation declines (returns ``None``): transports that
        cannot check readiness cheaply simply look forever-silent to a
        poller, which is safe — a :class:`HeartbeatMonitor` should only
        be worn by transports that override this.
        """
        return None

    def recv_many_leased(self, max_frames: int = 0):
        """:meth:`recv_many` without copying frames out of the receive
        buffer, for lend-mode decodes.

        Returns ``(frames, lease)``.  Buffered transports override this
        to return memoryview slices of their receive buffer plus a
        :class:`~repro.core.runtime.pool.Lease` that recycles the buffer
        when the last consumer drops it; the base implementation returns
        immutable copied frames and ``lease=None`` (always safe — a
        ``None`` lease simply means the frames own their bytes).
        """
        return self.recv_many(max_frames), None


def frame(payload: bytes | bytearray | memoryview) -> bytes:
    n = len(payload)
    if n > MAX_FRAME:
        raise TransportError(f"frame too large: {n}")
    return _LEN.pack(n) + bytes(payload)


def read_frame(read_exact) -> bytes:
    """Read one frame using ``read_exact(n) -> bytes``."""
    header = read_exact(4)
    (n,) = _LEN.unpack(header)
    if n > MAX_FRAME:
        raise TransportError(f"frame too large: {n}")
    return read_exact(n)


#: Initial receive-buffer capacity.  Grows (doubling) when a single frame
#: exceeds it; typical PBIO records never force a grow.
RECV_BUF = 64 * 1024


class FrameBuffer:
    """The buffered receive framer, shared by every socket transport.

    Owns a reusable receive buffer from which complete length-prefixed
    frames are sliced without further kernel crossings; the transport
    supplies bytes by asking for :meth:`writable` space, filling it with
    one ``recv_into`` (blocking or readiness-driven), and reporting the
    count via :meth:`advance`.  Factoring the buffer out of
    :class:`~repro.net.sockets.SocketTransport` lets the async transport
    (:mod:`repro.net.aio`) reuse the exact same framing discipline.
    """

    __slots__ = ("_buf", "_view", "_start", "_end")

    def __init__(self, capacity: int = RECV_BUF):
        self._buf = bytearray(capacity)
        self._view = memoryview(self._buf)
        self._start = 0  # first unconsumed byte
        self._end = 0  # one past the last filled byte

    @property
    def pending(self) -> int:
        """Bytes buffered but not yet sliced into frames."""
        return self._end - self._start

    def next_frame(self) -> bytes | None:
        """Slice one complete frame out of the buffer, or None."""
        avail = self._end - self._start
        if avail < 4:
            return None
        (n,) = _LEN.unpack_from(self._buf, self._start)
        if n > MAX_FRAME:
            raise TransportError(f"frame too large: {n}")
        if avail < 4 + n:
            return None
        start = self._start + 4
        data = bytes(self._view[start : start + n])
        self._start = start + n
        if self._start == self._end:
            self._start = self._end = 0  # drained: make compaction rare
        return data

    def next_frame_view(self) -> memoryview | None:
        """Like :meth:`next_frame`, but a zero-copy slice of the buffer.

        The slice aliases this framer's buffer, so the caller must either
        consume it before the next :meth:`writable`/:meth:`advance` cycle
        (a fill may compact or recycle the storage) or call
        :meth:`detach` to take ownership of the buffer under a lease.
        """
        avail = self._end - self._start
        if avail < 4:
            return None
        (n,) = _LEN.unpack_from(self._buf, self._start)
        if n > MAX_FRAME:
            raise TransportError(f"frame too large: {n}")
        if avail < 4 + n:
            return None
        start = self._start + 4
        data = self._view[start : start + n]
        self._start = start + n
        return data

    def detach(self, pool):
        """Hand the current buffer to the caller under a pool lease.

        Every slice produced by :meth:`next_frame_view` stays valid (the
        slices reference the bytearray directly); the framer continues on
        a fresh pool buffer of the same capacity, carrying over any
        partial frame tail.  Returns the
        :class:`~repro.core.runtime.pool.Lease` that will return the old
        buffer to ``pool`` when its last holder dies.
        """
        old, view, start, end = self._buf, self._view, self._start, self._end
        fresh = pool.acquire(len(old), zero=False)
        pending = end - start
        if pending:
            fresh[:pending] = view[start:end]
        self._buf = fresh
        self._view = memoryview(fresh)
        self._start, self._end = 0, pending
        return pool.lease(old)

    def needed(self) -> int:
        """Bytes still missing before the current frame is complete.

        Only meaningful after :meth:`next_frame` returned None (there is
        always at least one byte missing then).
        """
        avail = self._end - self._start
        if avail >= 4:
            (n,) = _LEN.unpack_from(self._buf, self._start)
            return 4 + n - avail
        return 4 - avail

    def writable(self, needed: int) -> memoryview:
        """Grow/compact so ``needed`` more bytes fit; return the tail to
        fill.  The view covers *all* free space, not just ``needed``
        bytes, so one kernel read can deliver many frames."""
        cap = len(self._buf)
        if self._end + needed > cap:
            pending = bytes(self._view[self._start : self._end])
            if len(pending) + needed > cap:
                cap = max(cap * 2, len(pending) + needed)
                self._view.release()
                self._buf = bytearray(cap)
                self._view = memoryview(self._buf)
            # copy via bytes above: overlapping memoryview assignment is
            # undefined, and the slice is tiny (a partial frame)
            self._buf[: len(pending)] = pending
            self._start, self._end = 0, len(pending)
        return self._view[self._end :]

    def advance(self, count: int) -> None:
        """Record ``count`` bytes written into the :meth:`writable` view."""
        self._end += count


class InMemoryPipe:
    """A pair of in-process transports connected back to back.

    Useful for unit tests and for the simulated network: no kernel, no
    latency, just byte-faithful delivery with accounting of bytes moved.
    """

    def __init__(self) -> None:
        a_to_b: deque[bytes] = deque()
        b_to_a: deque[bytes] = deque()
        self.a = _PipeEnd(a_to_b, b_to_a)
        self.b = _PipeEnd(b_to_a, a_to_b)
        self.a._peer = self.b
        self.b._peer = self.a

    def endpoints(self) -> tuple["_PipeEnd", "_PipeEnd"]:
        return self.a, self.b


class _PipeEnd(Transport):
    def __init__(self, outbox: deque[bytes], inbox: deque[bytes]):
        self._outbox = outbox
        self._inbox = inbox
        self._peer: _PipeEnd | None = None
        self._closed = False
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages_sent = 0

    def send(self, payload) -> None:
        if self._closed:
            raise TransportError("send on closed transport")
        if self._peer is not None and self._peer._closed:
            raise PeerClosedError("send failed: peer transport is closed")
        data = bytes(payload)
        self._outbox.append(data)
        self.bytes_sent += len(data)
        self.messages_sent += 1

    def recv(self) -> bytes:
        if self._closed:
            raise TransportError("recv on closed transport")
        if not self._inbox:
            if self._peer is not None and self._peer._closed:
                raise PeerClosedError("recv failed: peer closed, stream drained")
            raise TransportError("recv on empty pipe (peer sent nothing)")
        data = self._inbox.popleft()
        self.bytes_received += len(data)
        return data

    def send_many(self, frames) -> None:
        if self._closed:
            raise TransportError("send on closed transport")
        if self._peer is not None and self._peer._closed:
            raise PeerClosedError("send failed: peer transport is closed")
        for payload in frames:
            data = bytes(payload)
            self._outbox.append(data)
            self.bytes_sent += len(data)
            self.messages_sent += 1

    def recv_many(self, max_frames: int = 0) -> list[bytes]:
        out = [self.recv()]  # same empty/PeerClosed semantics as recv
        while self._inbox and (max_frames <= 0 or len(out) < max_frames):
            data = self._inbox.popleft()
            self.bytes_received += len(data)
            out.append(data)
        return out

    def pending(self) -> int:
        return len(self._inbox)

    def poll_recv(self) -> bytes | None:
        if self._closed:
            raise TransportError("recv on closed transport")
        if not self._inbox:
            if self._peer is not None and self._peer._closed:
                raise PeerClosedError("recv failed: peer closed, stream drained")
            return None
        data = self._inbox.popleft()
        self.bytes_received += len(data)
        return data

    def close(self) -> None:
        self._closed = True
