"""Deterministic network model calibrated to the paper's testbed.

The paper's machines sit on 100 Mbps Ethernet; Figure 1 reports one-way
network times of 0.227 ms (100 B), 0.345 ms (1 KB), 1.94 ms (10 KB) and
15.39 ms (100 KB).  A two-parameter affine model ``t = latency +
bytes/effective_bandwidth`` fitted to the 100 B and 100 KB points gives
latency ≈ 0.212 ms and effective bandwidth ≈ 6.75 MB/s (≈ 54 Mbps — about
half the wire rate, which is typical for 1999-era TCP on 100 Mbps
Ethernet) and predicts the intermediate sizes within ~11 %.

The model also carries a fixed per-receive kernel overhead standing in for
the ``select()`` cost the paper calls out ("for smaller record sizes, most
of the cost of receiving data is actually caused by the overhead of the
kernel select() call", Section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from .transport import InMemoryPipe, Transport, TransportError

#: Calibration from Figure 1 (see module docstring).
PAPER_LATENCY_S = 0.212e-3
PAPER_BYTES_PER_S = 6.75e6
PAPER_SELECT_OVERHEAD_S = 0.05e-3


@dataclass(frozen=True)
class NetworkModel:
    """Affine one-way transfer-time model."""

    latency_s: float = PAPER_LATENCY_S
    bytes_per_s: float = PAPER_BYTES_PER_S
    select_overhead_s: float = PAPER_SELECT_OVERHEAD_S

    def one_way_s(self, nbytes: int) -> float:
        """Modelled one-way delivery time for a message of ``nbytes``."""
        return self.latency_s + nbytes / self.bytes_per_s

    def receive_overhead_s(self) -> float:
        """Fixed receiver-side kernel overhead per message."""
        return self.select_overhead_s

    @classmethod
    def ethernet_100mbps(cls) -> "NetworkModel":
        """The paper-calibrated model (default construction)."""
        return cls()

    @classmethod
    def ideal(cls) -> "NetworkModel":
        """Zero-cost network: isolates CPU costs in composed results."""
        return cls(latency_s=0.0, bytes_per_s=float("inf"), select_overhead_s=0.0)


class SimulatedLink:
    """A duplex link over :class:`InMemoryPipe` that *accounts* modelled
    network time instead of sleeping.

    Each endpoint accumulates ``clock_s``, the virtual time its messages
    spent on the wire.  Benchmarks compose this with measured CPU times to
    produce Figure 1/5-style breakdowns without multi-second sleeps.
    """

    def __init__(self, model: NetworkModel | None = None):
        self.model = model or NetworkModel()
        pipe = InMemoryPipe()
        self.a = SimulatedEndpoint(pipe.a, self.model)
        self.b = SimulatedEndpoint(pipe.b, self.model)

    def endpoints(self) -> tuple["SimulatedEndpoint", "SimulatedEndpoint"]:
        return self.a, self.b


class SimulatedEndpoint(Transport):
    """Transport endpoint that tracks modelled wire time per message."""

    def __init__(self, pipe_end, model: NetworkModel):
        self._pipe = pipe_end
        self.model = model
        self.wire_time_s = 0.0
        self.recv_overhead_s = 0.0

    def send(self, payload) -> None:
        self.wire_time_s += self.model.one_way_s(len(payload))
        self._pipe.send(payload)

    def recv(self) -> bytes:
        data = self._pipe.recv()
        self.recv_overhead_s += self.model.receive_overhead_s()
        return data

    def pending(self) -> int:
        return self._pipe.pending()

    @property
    def bytes_sent(self) -> int:
        return self._pipe.bytes_sent

    @property
    def bytes_received(self) -> int:
        return self._pipe.bytes_received

    def close(self) -> None:
        self._pipe.close()


def paper_network_times_ms() -> dict[str, float]:
    """The paper's measured one-way network times (Figure 1), for
    benchmark tables that quote paper-vs-model."""
    return {"100b": 0.227, "1kb": 0.345, "10kb": 1.94, "100kb": 15.39}
