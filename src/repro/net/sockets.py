"""Real loopback TCP transport.

Integration tests use this to prove every wire format survives an actual
kernel socket (framing, partial reads, large messages), not just the
in-memory pipe.
"""

from __future__ import annotations

import socket
import threading
from typing import Callable

from .transport import Transport, TransportError, TransportTimeout, frame, read_frame


class SocketTransport(Transport):
    """Length-prefix framed messages over a connected TCP socket."""

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    def set_timeout(self, timeout_s: float | None) -> None:
        """Bound blocking send/recv; exceeded → :class:`TransportTimeout`."""
        self._sock.settimeout(timeout_s)

    def send(self, payload) -> None:
        try:
            self._sock.sendall(frame(payload))
        except TimeoutError as exc:
            raise TransportTimeout(f"send timed out: {exc}") from exc
        except OSError as exc:
            raise TransportError(f"send failed: {exc}") from exc

    def recv(self) -> bytes:
        return read_frame(self._read_exact)

    def _read_exact(self, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            try:
                chunk = self._sock.recv(remaining)
            except TimeoutError as exc:
                raise TransportTimeout(f"recv timed out: {exc}") from exc
            except OSError as exc:
                raise TransportError(f"recv failed: {exc}") from exc
            if not chunk:
                raise TransportError("connection closed mid-frame")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()


def loopback_pair(timeout_s: float = 10.0) -> tuple[SocketTransport, SocketTransport]:
    """Create a connected pair of loopback TCP transports."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    port = listener.getsockname()[1]
    client = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    client.settimeout(timeout_s)
    client.connect(("127.0.0.1", port))
    server, _ = listener.accept()
    server.settimeout(timeout_s)
    listener.close()
    return SocketTransport(client), SocketTransport(server)


class EchoServer:
    """Background thread applying a handler to each frame and replying.

    Models the peer side of the paper's round-trip experiments: receive,
    decode, re-encode, send back.  The default handler echoes bytes.

    A handler exception does not silently kill the serving thread (which
    would leave the client blocked until its socket timeout): the server
    records the exception, closes its socket deliberately — the client's
    pending ``recv`` fails fast with a :class:`TransportError` — and
    re-raises the original exception from :meth:`close`.
    """

    def __init__(self, handler: Callable[[bytes], bytes] | None = None):
        self._handler = handler or (lambda data: data)
        self._local, remote = loopback_pair()
        self._remote = remote
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._stopping = False
        self.handler_error: BaseException | None = None
        self._thread.start()

    @property
    def client(self) -> SocketTransport:
        """The transport the test/benchmark should talk through."""
        return self._local

    def _serve(self) -> None:
        try:
            while not self._stopping:
                data = self._remote.recv()
                try:
                    reply = self._handler(data)
                except Exception as exc:
                    self.handler_error = exc
                    self._remote.close()  # deliberate: unblock the client now
                    return
                self._remote.send(reply)
        except TransportError:
            pass  # peer closed

    def close(self) -> None:
        self._stopping = True
        self._local.close()
        self._remote.close()
        self._thread.join(timeout=5)
        if self.handler_error is not None:
            raise TransportError(
                f"echo handler failed: {self.handler_error!r}"
            ) from self.handler_error

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
