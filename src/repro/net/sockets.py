"""Real loopback TCP transport.

Integration tests use this to prove every wire format survives an actual
kernel socket (framing, partial reads, large messages), not just the
in-memory pipe.

The send side is vectored: ``sendmsg`` takes the length prefix, the
header segment and the application payload as separate iovecs, so neither
:meth:`SocketTransport.send_segments` nor :meth:`send_many` ever builds a
contiguous copy of the burst.  The receive side runs a buffered framer —
one ``recv_into`` per syscall into a reusable buffer, from which every
*complete* frame already received is sliced without further kernel
crossings (:meth:`recv_many`).
"""

from __future__ import annotations

import socket
import threading
from typing import Callable

from .transport import (
    MAX_FRAME,
    FrameBuffer,
    Transport,
    TransportError,
    TransportTimeout,
    _LEN,
)

#: iovecs per sendmsg call.  Linux caps a single call at ``UIO_MAXIOV``
#: (1024); staying well under it keeps one burst = few syscalls without
#: ever tripping EMSGSIZE on smaller platforms.
_IOV_MAX = 512

#: Shared pool of lent receive buffers (lazy: importing the conversion
#: runtime here at module scope would be a circular import).
_recv_pool = None


def _lease_pool():
    global _recv_pool
    if _recv_pool is None:
        from repro.core.runtime.pool import BufferPool

        _recv_pool = BufferPool(max_per_size=16)
    return _recv_pool


class SocketTransport(Transport):
    """Length-prefix framed messages over a connected TCP socket."""

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._framer = FrameBuffer()

    def set_timeout(self, timeout_s: float | None) -> None:
        """Bound blocking send/recv; exceeded → :class:`TransportTimeout`."""
        self._sock.settimeout(timeout_s)

    # -- vectored send ------------------------------------------------------

    def _sendv(self, bufs: list) -> None:
        """sendall for an iovec list: one ``sendmsg`` per <=512 buffers,
        resuming mid-buffer on partial sends."""
        # Zero-length buffers (empty frames/segments) never advance the
        # resume cursor — sendmsg reports 0 bytes for them — so drop them
        # up front or the resume loop spins forever.
        bufs = [b for b in bufs if len(b)]
        idx = 0
        try:
            while idx < len(bufs):
                sent = self._sock.sendmsg(bufs[idx : idx + _IOV_MAX])
                while sent:
                    buf = bufs[idx]
                    if sent >= len(buf):
                        sent -= len(buf)
                        idx += 1
                    else:
                        bufs[idx] = memoryview(buf)[sent:]
                        sent = 0
        except TimeoutError as exc:
            raise TransportTimeout(f"send timed out: {exc}") from exc
        except OSError as exc:
            raise TransportError(f"send failed: {exc}") from exc

    def send(self, payload) -> None:
        n = len(payload)
        if n > MAX_FRAME:
            raise TransportError(f"frame too large: {n}")
        self._sendv([_LEN.pack(n), payload])

    def send_segments(self, segments) -> None:
        """One logical message from many buffers, zero-copy: the length
        prefix and each segment go to the kernel as separate iovecs."""
        total = sum(len(s) for s in segments)
        if total > MAX_FRAME:
            raise TransportError(f"frame too large: {total}")
        self._sendv([_LEN.pack(total), *segments])

    def send_many(self, frames) -> None:
        """Many length-prefixed messages in one vectored burst."""
        bufs = []
        for payload in frames:
            n = len(payload)
            if n > MAX_FRAME:
                raise TransportError(f"frame too large: {n}")
            bufs.append(_LEN.pack(n))
            bufs.append(payload)
        if bufs:
            self._sendv(bufs)

    # -- buffered receive framer --------------------------------------------
    #
    # The buffer and slicing discipline live in FrameBuffer (shared with
    # the async transport); this class only supplies the blocking fill.

    def _fill(self) -> None:
        """Make writable space, then recv_into once."""
        view = self._framer.writable(self._framer.needed())
        try:
            got = self._sock.recv_into(view)
        except TimeoutError as exc:
            raise TransportTimeout(f"recv timed out: {exc}") from exc
        except OSError as exc:
            raise TransportError(f"recv failed: {exc}") from exc
        if not got:
            raise TransportError("connection closed mid-frame")
        self._framer.advance(got)

    def _next_frame(self) -> bytes:
        while True:
            data = self._framer.next_frame()
            if data is not None:
                return data
            self._fill()

    def recv(self) -> bytes:
        return self._next_frame()

    def recv_many(self, max_frames: int = 0) -> list[bytes]:
        """One blocking frame plus every further complete frame already
        sitting in the receive buffer — no extra syscalls."""
        out = [self._next_frame()]
        while max_frames <= 0 or len(out) < max_frames:
            data = self._framer.next_frame()
            if data is None:
                break
            out.append(data)
        return out

    def recv_many_leased(self, max_frames: int = 0):
        """:meth:`recv_many` with zero payload copies.

        Frames are memoryview slices of the receive buffer; the buffer
        itself is detached to the caller under a pool lease and the
        framer continues on a fresh pooled buffer (any partial-frame tail
        is carried over — that copy is at most one incomplete frame).
        """
        framer = self._framer
        first = framer.next_frame_view()
        while first is None:
            # No views have been sliced yet, so the fill below is free to
            # compact or grow the buffer.
            self._fill()
            first = framer.next_frame_view()
        out = [first]
        while max_frames <= 0 or len(out) < max_frames:
            data = framer.next_frame_view()
            if data is None:
                break
            out.append(data)
        return out, framer.detach(_lease_pool())

    def poll_recv(self) -> bytes | None:
        """A complete frame if one is buffered or readable *now*, else None.

        Drains the kernel buffer with ``MSG_DONTWAIT`` reads until either
        a frame completes or the socket has nothing more to give — never
        blocks, regardless of the configured timeout.
        """
        while True:
            data = self._framer.next_frame()
            if data is not None:
                return data
            view = self._framer.writable(self._framer.needed())
            try:
                got = self._sock.recv_into(view, 0, socket.MSG_DONTWAIT)
            except (BlockingIOError, InterruptedError):
                return None
            except OSError as exc:
                raise TransportError(f"recv failed: {exc}") from exc
            if not got:
                raise TransportError("connection closed mid-frame")
            self._framer.advance(got)

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()


def loopback_pair(timeout_s: float = 10.0) -> tuple[SocketTransport, SocketTransport]:
    """Create a connected pair of loopback TCP transports."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    port = listener.getsockname()[1]
    client = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    client.settimeout(timeout_s)
    client.connect(("127.0.0.1", port))
    server, _ = listener.accept()
    server.settimeout(timeout_s)
    listener.close()
    return SocketTransport(client), SocketTransport(server)


class EchoServer:
    """Background thread applying a handler to each frame and replying.

    Models the peer side of the paper's round-trip experiments: receive,
    decode, re-encode, send back.  The default handler echoes bytes.

    A handler exception does not silently kill the serving thread (which
    would leave the client blocked until its socket timeout): the server
    records the exception, closes its socket deliberately — the client's
    pending ``recv`` fails fast with a :class:`TransportError` — and
    re-raises the original exception from :meth:`close`.

    ``timeout_s`` bounds every blocking operation on both ends (default
    10 s, the historical constant); slow-CI chaos runs pass a larger
    budget instead of editing the source.
    """

    def __init__(
        self,
        handler: Callable[[bytes], bytes] | None = None,
        *,
        timeout_s: float = 10.0,
    ):
        self._handler = handler or (lambda data: data)
        self._local, remote = loopback_pair(timeout_s)
        self._remote = remote
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._stopping = False
        self.handler_error: BaseException | None = None
        self._thread.start()

    @property
    def client(self) -> SocketTransport:
        """The transport the test/benchmark should talk through."""
        return self._local

    def _serve(self) -> None:
        try:
            while not self._stopping:
                data = self._remote.recv()
                try:
                    reply = self._handler(data)
                except Exception as exc:
                    self.handler_error = exc
                    self._remote.close()  # deliberate: unblock the client now
                    return
                self._remote.send(reply)
        except TransportError:
            pass  # peer closed

    def close(self) -> None:
        self._stopping = True
        self._local.close()
        self._remote.close()
        self._thread.join(timeout=5)
        if self.handler_error is not None:
            raise TransportError(
                f"echo handler failed: {self.handler_error!r}"
            ) from self.handler_error

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
