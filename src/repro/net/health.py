"""Liveness and self-healing primitives: the health plane.

The paper's wire-format wins assume long-lived peers; this module is what
lets the services carrying PBIO traffic *keep* peers long-lived without an
operator in the loop (docs/robustness.md §9):

* :class:`HeartbeatMonitor` — wears any :class:`~repro.net.transport.Transport`
  and exchanges the strict-size ``MSG_PING``/``MSG_PONG`` control frames
  (wire types 5/6).  Misses accumulate only when the link is otherwise
  silent; ``miss_threshold`` unanswered probes → :class:`PeerUnresponsive`.
* :class:`ProbePolicy` — the exponential-backoff schedule a
  :class:`~repro.net.relay.Relay` uses to probe quarantined downstreams,
  plus the eviction deadline after which a silent peer is dropped for good.
* :class:`BoundedSendQueue` — a per-peer overflow buffer with the four
  policies the ROADMAP's relay-fabric item calls for
  (``block | drop_new | drop_old | coalesce``), shared between the sync
  relay send path and the async writer queue.
* :class:`CircuitBreaker` — the open/half-open/closed generalisation of
  :class:`~repro.fmtserv.client.FormatService`'s flat server-down holdoff,
  one per replica so the client can fail over down an ordered server list.

Everything takes an injectable ``clock`` (``time.monotonic`` by default);
:class:`repro.net.timing.VirtualClock` runs the whole plane in virtual
time for deterministic tests.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Callable

from ..core import encoder as enc
from .transport import PeerUnresponsive, Transport, TransportError

#: The overflow policies a bounded send queue supports.
OVERFLOW_POLICIES = ("block", "drop_new", "drop_old", "coalesce")


def _queue_depth_of(transport) -> int:
    """The transport's write-queue occupancy, if it exposes one (aio does)."""
    depth = getattr(transport, "write_queue_depth", 0)
    return depth if isinstance(depth, int) else 0


class HeartbeatMonitor:
    """Liveness verdicts for one transport, driven by explicit ticks.

    The monitor never owns a thread: callers pump it by calling
    :meth:`tick` from whatever loop already services the link.  Each tick

    1. drains immediately-available inbound frames via ``poll_recv`` and
       feeds heartbeat control frames to :meth:`observe` (data frames are
       queued for the caller on :attr:`inbox` — the monitor never eats
       application traffic);
    2. sends a fresh ping once ``interval_s`` has elapsed, counting the
       previous ping as *missed* if nothing proved the peer alive since;
    3. raises :class:`PeerUnresponsive` while ``misses >= miss_threshold``.

    *Any* inbound frame counts as proof of life (a peer streaming data at
    full rate may reasonably starve its pong writes), so heartbeats add
    zero false positives on busy links and only arbitrate silent ones.

    Pings carry a monotonic nonce (starting at 1; 0 is the goodbye nonce)
    and the local send-queue depth; inbound pings are answered with a pong
    automatically.  A goodbye ping from the peer sets :attr:`peer_goodbye`
    so callers can re-dial proactively instead of waiting out a timeout.
    """

    def __init__(
        self,
        transport: Transport,
        *,
        interval_s: float = 1.0,
        miss_threshold: int = 3,
        clock: Callable[[], float] = time.monotonic,
        on_state_change: Callable[[bool], None] | None = None,
    ):
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if miss_threshold < 1:
            raise ValueError("miss_threshold must be >= 1")
        self.transport = transport
        self.interval_s = interval_s
        self.miss_threshold = miss_threshold
        self._clock = clock
        self._on_state_change = on_state_change
        self._nonce = 0
        self._last_ping_at: float | None = None
        self._alive_since_ping = True  # no probe outstanding yet
        self.misses = 0
        self.peer_goodbye = False
        self.peer_queue_depth = 0
        self.pings_sent = 0
        self.pongs_received = 0
        #: Non-heartbeat frames harvested while polling, oldest first.
        self.inbox: deque[bytes] = deque()

    @property
    def responsive(self) -> bool:
        return self.misses < self.miss_threshold

    def observe(self, frame) -> bool:
        """Account one inbound frame; True if it was heartbeat control.

        Callers that run their own receive loop (the relay, the async
        reader pump) push every frame through here; heartbeat frames are
        consumed, everything else returns ``False`` untouched and counts
        as proof of life.
        """
        was_responsive = self.responsive
        self._alive_since_ping = True
        if self.misses:
            self.misses = 0
            if not was_responsive and self._on_state_change is not None:
                self._on_state_change(True)
        header = enc.try_unpack_header(frame)
        if header is None:
            return False
        msg_type = header[0]
        if msg_type == enc.MSG_PONG:
            nonce, depth = enc.parse_pong(frame)
            self.pongs_received += 1
            self.peer_queue_depth = depth
            return True
        if msg_type == enc.MSG_PING:
            nonce, depth = enc.parse_ping(frame)
            self.peer_queue_depth = depth
            if nonce == enc.GOODBYE_NONCE:
                self.peer_goodbye = True
            else:
                try:
                    self.transport.send(
                        enc.encode_pong(nonce, _queue_depth_of(self.transport))
                    )
                except TransportError:
                    pass  # the tick's own ping will discover a dead link
            return True
        return False

    def _poll(self) -> None:
        while True:
            try:
                frame = self.transport.poll_recv()
            except TransportError:
                return  # a dead link shows up as silence → misses
            if frame is None:
                return
            if not self.observe(frame):
                self.inbox.append(frame)

    def tick(self, now: float | None = None) -> bool:
        """Pump the monitor once; returns the current liveness verdict.

        Raises :class:`PeerUnresponsive` when the verdict is (still)
        negative, *after* updating state — callers that prefer a boolean
        can catch it or read :attr:`responsive`.
        """
        if now is None:
            now = self._clock()
        self._poll()
        if self._last_ping_at is None or now - self._last_ping_at >= self.interval_s:
            was_responsive = self.responsive
            if self._last_ping_at is not None and not self._alive_since_ping:
                self.misses += 1
                if was_responsive and not self.responsive and self._on_state_change is not None:
                    self._on_state_change(False)
            self._send_ping(now)
        if not self.responsive:
            raise PeerUnresponsive(
                f"peer missed {self.misses} consecutive heartbeats "
                f"(threshold {self.miss_threshold}, interval {self.interval_s}s)"
            )
        return True

    def _send_ping(self, now: float) -> None:
        self._nonce += 1
        self._last_ping_at = now
        self._alive_since_ping = False
        try:
            self.transport.send(enc.encode_ping(self._nonce, _queue_depth_of(self.transport)))
            self.pings_sent += 1
        except TransportError:
            pass  # an unsendable ping is an unanswerable ping: counts as a miss

    def goodbye(self) -> None:
        """Emit the drain goodbye (nonce 0); best-effort, never raises."""
        try:
            self.transport.send(enc.encode_ping(enc.GOODBYE_NONCE, _queue_depth_of(self.transport)))
        except TransportError:
            pass


def send_goodbye(transport) -> bool:
    """Best-effort goodbye ping on a bare transport; True if it went out."""
    try:
        transport.send(enc.encode_ping(enc.GOODBYE_NONCE, _queue_depth_of(transport)))
        return True
    except TransportError:
        return False


@dataclass(frozen=True)
class ProbePolicy:
    """Backoff schedule for probing a quarantined peer, plus its eviction.

    Attempt *n* (0-based) waits ``min(base_delay_s * multiplier**n,
    max_delay_s)`` after quarantine entry (cumulatively); a peer that has
    not answered any probe ``eviction_deadline_s`` after entering
    quarantine is evicted.  Deterministic on purpose — no jitter — so
    virtual-time tests replay exactly.
    """

    base_delay_s: float = 0.5
    multiplier: float = 2.0
    max_delay_s: float = 8.0
    eviction_deadline_s: float = 60.0

    def __post_init__(self):
        if self.base_delay_s <= 0:
            raise ValueError("base_delay_s must be positive")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.max_delay_s < self.base_delay_s:
            raise ValueError("max_delay_s must be >= base_delay_s")
        if self.eviction_deadline_s <= 0:
            raise ValueError("eviction_deadline_s must be positive")

    def delay(self, attempt: int) -> float:
        """Seconds to wait before probe ``attempt`` (0-based)."""
        return min(self.base_delay_s * (self.multiplier**attempt), self.max_delay_s)


class BoundedSendQueue:
    """A byte-bounded per-peer frame queue with an overflow policy.

    Shared by the sync relay (one per downstream, absorbing frames the
    transport would block on) and the async writer queue.  Policies:

    * ``block``    — admit nothing over budget; the caller sees the
      rejection (:class:`WriteQueueFull` semantics) and applies its own
      backpressure.  The seed behaviour.
    * ``drop_new`` — reject the incoming frame, keep the queue.
    * ``drop_old`` — evict oldest queued *data* frames until the new one
      fits (freshness beats completeness — telemetry-style streams).
    * ``coalesce`` — like ``drop_old``, but first try to replace a queued
      data frame of the same ``(context, format)`` stream, so each stream
      keeps exactly its newest record.

    Control frames (announcements, tokens, heartbeats — anything that is
    not ``MSG_DATA``) are never dropped or coalesced and are admitted even
    over budget: losing an announcement would corrupt the peer's format
    state forever, while losing a data record only loses that record.
    """

    __slots__ = (
        "policy",
        "max_bytes",
        "_frames",
        "_bytes",
        "dropped_new",
        "dropped_old",
        "coalesced",
    )

    def __init__(self, max_bytes: int, policy: str = "block"):
        if policy not in OVERFLOW_POLICIES:
            raise ValueError(f"unknown overflow policy {policy!r}; pick one of {OVERFLOW_POLICIES}")
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.policy = policy
        self.max_bytes = max_bytes
        self._frames: deque[tuple[bytes, tuple | None]] = deque()
        self._bytes = 0
        self.dropped_new = 0
        self.dropped_old = 0
        self.coalesced = 0

    def __len__(self) -> int:
        return len(self._frames)

    @property
    def queued_bytes(self) -> int:
        return self._bytes

    @staticmethod
    def _stream_key(frame) -> tuple | None:
        """Droppability key: None marks control frames (never dropped).

        Plain data frames key by ``(context, format)`` so ``coalesce``
        can keep each stream's newest record.  Sequenced frames
        (``MSG_DATA_SEQ``) are droppable — the publisher WAL retransmits
        them — but carry their sequence in the key, so no queued frame
        ever matches and ``coalesce`` can never *replace* one: silently
        swallowing a specific sequence would turn every drop into a nack
        round-trip.  ``MSG_ACK`` is control: losing the latest cursor
        stalls compaction upstream for no queue-space gain.
        """
        header = enc.try_unpack_header(frame)
        if header is None:
            return None
        if header[0] == enc.MSG_DATA:
            return header[1], header[2]
        if (
            header[0] == enc.MSG_DATA_SEQ
            and len(frame) >= enc.HEADER_SIZE + enc.SEQ_PREFIX_SIZE
        ):
            seq = int.from_bytes(
                bytes(frame[enc.HEADER_SIZE : enc.HEADER_SIZE + enc.SEQ_PREFIX_SIZE]),
                "big",
            )
            return header[1], header[2], seq
        return None

    def push(self, frame) -> bool:
        """Queue one frame; False if the policy rejected it."""
        data = bytes(frame)
        key = self._stream_key(data)
        n = len(data)
        if key is None or self._bytes + n <= self.max_bytes:
            self._frames.append((data, key))
            self._bytes += n
            return True
        if self.policy == "coalesce":
            for i, (queued, queued_key) in enumerate(self._frames):
                if queued_key == key:
                    self._bytes += n - len(queued)
                    self._frames[i] = (data, key)
                    self.coalesced += 1
                    return True
            # no same-stream frame to replace: fall through to drop_old
        if self.policy in ("coalesce", "drop_old"):
            kept: list[tuple[bytes, tuple | None]] = []
            while self._frames and self._bytes + n > self.max_bytes:
                old, old_key = self._frames.popleft()
                if old_key is None:
                    kept.append((old, old_key))  # control frames survive
                else:
                    self._bytes -= len(old)
                    self.dropped_old += 1
            for item in reversed(kept):
                self._frames.appendleft(item)
            if self._bytes + n <= self.max_bytes:
                self._frames.append((data, key))
                self._bytes += n
                return True
        # block and drop_new reject the newcomer (and coalesce/drop_old
        # when even an emptied queue cannot fit it)
        if self.policy != "block":
            self.dropped_new += 1
        return False

    def pop(self) -> bytes | None:
        if not self._frames:
            return None
        data, _key = self._frames.popleft()
        self._bytes -= len(data)
        return data

    def flush(self, transport, *, max_frames: int = 0) -> int:
        """Send queued frames in order; stops at the first send failure.

        Returns the number of frames delivered.  A failure leaves the
        unsent frames queued (the frame that failed is re-queued at the
        front) and re-raises, so callers can retry after the link heals.
        """
        sent = 0
        while self._frames and (max_frames <= 0 or sent < max_frames):
            data, _key = self._frames[0]
            transport.send(data)  # TransportError propagates; frame stays queued
            self._frames.popleft()
            self._bytes -= len(data)
            sent += 1
        return sent

    def clear(self) -> None:
        self._frames.clear()
        self._bytes = 0


class CircuitBreaker:
    """Closed / open / half-open failure gate for one remote replica.

    Generalises the flat "server down until T" holdoff the format-service
    client shipped with: failures open the breaker for ``holdoff_s``
    (growing by ``multiplier`` per consecutive open, capped at
    ``max_holdoff_s``); once the holdoff expires the breaker goes
    *half-open* and :meth:`allow` admits a single trial call; the trial's
    outcome either closes the breaker (and resets the holdoff) or
    re-opens it for longer.
    """

    __slots__ = ("holdoff_s", "multiplier", "max_holdoff_s", "_clock", "_state", "_until", "_opens")

    def __init__(
        self,
        holdoff_s: float = 30.0,
        *,
        multiplier: float = 2.0,
        max_holdoff_s: float = 300.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if holdoff_s <= 0:
            raise ValueError("holdoff_s must be positive")
        if multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        self.holdoff_s = holdoff_s
        self.multiplier = multiplier
        self.max_holdoff_s = max_holdoff_s
        self._clock = clock
        self._state = "closed"
        self._until = 0.0
        self._opens = 0  # consecutive opens since the last success

    @property
    def state(self) -> str:
        if self._state == "open" and self._clock() >= self._until:
            return "half_open"
        return self._state

    def allow(self) -> bool:
        """May a call go to this replica right now?"""
        if self._state == "closed":
            return True
        if self._clock() >= self._until:
            self._state = "half_open"
            return True
        return False

    def record_success(self) -> None:
        self._state = "closed"
        self._opens = 0

    def record_failure(self) -> None:
        self._opens += 1
        holdoff = min(
            self.holdoff_s * (self.multiplier ** (self._opens - 1)), self.max_holdoff_s
        )
        self._state = "open"
        self._until = self._clock() + holdoff
