"""Virtual RISC instruction set, after Engler's Vcode.

The paper generates receiver-side conversion routines through Vcode, "an
API for a virtual RISC instruction set" whose macros each expand to one or
two native instructions.  We reproduce that layer structurally: programs
are sequences of :class:`Instr` over integer registers ``r0..r31``, float
registers ``f0..f15``, and named memory segments (the receive buffer and
the destination record).  A small VM (:mod:`repro.vcode.vm`) stands in
for the host CPU.

The instruction inventory is the subset a marshalling routine needs:
loads/stores of every primitive width in either byte order, integer and
float conversions, basic ALU ops, compare-and-branch, and a bulk ``memcpy``
(real Vcode would emit a call to the C library's memcpy; we model the same
thing as one instruction).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any


class Op(enum.Enum):
    # memory: (dst_reg, base_name, offset_reg_or_imm, size, signed, endian)
    LD = "ld"  # integer load
    LDF = "ldf"  # float load (f4/f8) into float register
    ST = "st"  # integer store
    STF = "stf"  # float store
    MEMCPY = "memcpy"  # (dst_base, dst_off, src_base, src_off, length)

    # ALU: (dst, src_a, src_b_or_imm)
    MOVI = "movi"  # load immediate
    MOV = "mov"
    ADD = "add"
    ADDI = "addi"
    SUB = "sub"
    MULI = "muli"

    # float register moves/conversions: (dst_f, src) in various combos
    FMOV = "fmov"
    CVT_I2F = "cvt_i2f"  # int reg -> float reg
    CVT_F2I = "cvt_f2i"  # float reg -> int reg (truncating)
    CVT_F2F = "cvt_f2f"  # width change is implicit in store size

    # control: labels are symbolic targets resolved at seal time
    LABEL = "label"
    JMP = "jmp"
    BLT = "blt"  # (reg_a, reg_b, label)
    BGE = "bge"
    BEQ = "beq"
    BNE = "bne"
    RET = "ret"


@dataclass(frozen=True)
class Instr:
    """One virtual instruction."""

    op: Op
    args: tuple[Any, ...]

    def __repr__(self) -> str:
        return f"{self.op.value} {', '.join(map(str, self.args))}"


#: Number of integer and float registers, per the v8/v9 flavour of Vcode.
NUM_INT_REGS = 32
NUM_FLOAT_REGS = 16

#: Integer load/store widths the ISA supports.
INT_WIDTHS = (1, 2, 4, 8)
#: Float widths.
FLOAT_WIDTHS = (4, 8)


def validate(instr: Instr) -> None:
    """Structural validation of one instruction (used by the emitter)."""
    op, args = instr.op, instr.args
    if op in (Op.LD, Op.ST):
        _, _, _, size, signed, endian = args
        if size not in INT_WIDTHS:
            raise ValueError(f"{op}: bad integer width {size}")
        if endian not in ("big", "little"):
            raise ValueError(f"{op}: bad endian {endian!r}")
        if not isinstance(signed, bool):
            raise ValueError(f"{op}: signed flag must be bool")
    elif op in (Op.LDF, Op.STF):
        _, _, _, size, endian = args
        if size not in FLOAT_WIDTHS:
            raise ValueError(f"{op}: bad float width {size}")
        if endian not in ("big", "little"):
            raise ValueError(f"{op}: bad endian {endian!r}")
    elif op is Op.MEMCPY:
        if len(args) != 5:
            raise ValueError("memcpy needs 5 operands")
