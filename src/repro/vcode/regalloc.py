"""Register pool, mirroring Vcode's ``v_getreg`` / ``v_putreg``.

Conversion code generators grab scratch registers for the duration of a
field's load/convert/store sequence and release them after; loop counters
stay allocated across the loop body.  Exhaustion raises rather than
spilling — conversion routines have tiny live sets, so a spill would
indicate a generator bug.
"""

from __future__ import annotations

from contextlib import contextmanager

from .isa import NUM_FLOAT_REGS, NUM_INT_REGS


class RegisterExhausted(RuntimeError):
    """No free register of the requested class."""


class RegisterPool:
    """Tracks free/allocated integer and float registers."""

    def __init__(
        self,
        num_int: int = NUM_INT_REGS,
        num_float: int = NUM_FLOAT_REGS,
        reserved_int: int = 2,
    ):
        # Low integer registers are reserved for the VM calling convention
        # (r0 = constant zero, r1 = return value), like real RISC ABIs.
        self._free_int = list(range(num_int - 1, reserved_int - 1, -1))
        self._free_float = list(range(num_float - 1, -1, -1))
        self._live_int: set[int] = set()
        self._live_float: set[int] = set()

    def get_int(self) -> int:
        if not self._free_int:
            raise RegisterExhausted("out of integer registers")
        reg = self._free_int.pop()
        self._live_int.add(reg)
        return reg

    def put_int(self, reg: int) -> None:
        if reg not in self._live_int:
            raise ValueError(f"r{reg} is not allocated")
        self._live_int.remove(reg)
        self._free_int.append(reg)

    def get_float(self) -> int:
        if not self._free_float:
            raise RegisterExhausted("out of float registers")
        reg = self._free_float.pop()
        self._live_float.add(reg)
        return reg

    def put_float(self, reg: int) -> None:
        if reg not in self._live_float:
            raise ValueError(f"f{reg} is not allocated")
        self._live_float.remove(reg)
        self._free_float.append(reg)

    @contextmanager
    def scratch_int(self):
        reg = self.get_int()
        try:
            yield reg
        finally:
            self.put_int(reg)

    @contextmanager
    def scratch_float(self):
        reg = self.get_float()
        try:
            yield reg
        finally:
            self.put_float(reg)

    @property
    def live_counts(self) -> tuple[int, int]:
        return len(self._live_int), len(self._live_float)
