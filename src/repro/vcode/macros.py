"""High-level emission macros: field conversion sequences.

These are the vcode equivalents of the paper's "customized data conversion
routines [that] access and store data elements, convert elements between
basic types" — each macro emits the short load/convert/store sequence for
one field (or a counted loop for arrays), reading from segment ``"src"``
(the receive buffer, in wire byte order) and writing to ``"dst"`` (the
receiver's native record).

The macros are deliberately independent of PBIO's plan data structures so
the vcode layer stays a standalone substrate; the DCG backend in
:mod:`repro.core.conversion.codegen` lowers its plan onto these.
"""

from __future__ import annotations

from .emitter import Emitter, Program
from .regalloc import RegisterPool

#: Loops longer than this are emitted as counted loops; shorter ones are
#: fully unrolled (the trade real code generators make).
UNROLL_LIMIT = 8


class ConversionEmitter:
    """Builds a conversion :class:`Program` field by field."""

    def __init__(self, src_endian: str, dst_endian: str):
        self.em = Emitter()
        self.pool = RegisterPool()
        self.src_endian = src_endian
        self.dst_endian = dst_endian

    # -- per-field macros ---------------------------------------------------

    def copy_bytes(self, dst_off: int, src_off: int, length: int) -> None:
        """Raw byte copy (identical representation on both sides)."""
        self.em.memcpy("dst", dst_off, "src", src_off, length)

    def convert_int(
        self,
        dst_off: int,
        dst_size: int,
        src_off: int,
        src_size: int,
        *,
        signed: bool,
        count: int = 1,
    ) -> None:
        """Integer field: byte order and/or width change, possibly an array."""
        if count <= UNROLL_LIMIT:
            with self.pool.scratch_int() as r:
                for i in range(count):
                    self.em.ld(r, "src", src_off + i * src_size, src_size, signed=signed, endian=self.src_endian)
                    self.em.st(r, "dst", dst_off + i * dst_size, dst_size, endian=self.dst_endian)
            return
        self._counted_loop(
            count,
            lambda idx_src, idx_dst: self._int_body(idx_src, idx_dst, dst_off, dst_size, src_off, src_size, signed),
            src_stride=src_size,
            dst_stride=dst_size,
        )

    def _int_body(self, idx_src: int, idx_dst: int, dst_off: int, dst_size: int, src_off: int, src_size: int, signed: bool) -> None:
        with self.pool.scratch_int() as r:
            self.em.ld(r, "src", (idx_src, src_off), src_size, signed=signed, endian=self.src_endian)
            self.em.st(r, "dst", (idx_dst, dst_off), dst_size, endian=self.dst_endian)

    def convert_float(
        self,
        dst_off: int,
        dst_size: int,
        src_off: int,
        src_size: int,
        *,
        count: int = 1,
    ) -> None:
        """Float field: byte order and/or float<->double width change."""
        if count <= UNROLL_LIMIT:
            with self.pool.scratch_float() as f:
                for i in range(count):
                    self.em.ldf(f, "src", src_off + i * src_size, src_size, endian=self.src_endian)
                    self.em.stf(f, "dst", dst_off + i * dst_size, dst_size, endian=self.dst_endian)
            return
        self._counted_loop(
            count,
            lambda idx_src, idx_dst: self._float_body(idx_src, idx_dst, dst_off, dst_size, src_off, src_size),
            src_stride=src_size,
            dst_stride=dst_size,
        )

    def _float_body(self, idx_src: int, idx_dst: int, dst_off: int, dst_size: int, src_off: int, src_size: int) -> None:
        with self.pool.scratch_float() as f:
            self.em.ldf(f, "src", (idx_src, src_off), src_size, endian=self.src_endian)
            self.em.stf(f, "dst", (idx_dst, dst_off), dst_size, endian=self.dst_endian)

    def convert_int_to_float(
        self, dst_off: int, dst_size: int, src_off: int, src_size: int, *, signed: bool, count: int = 1
    ) -> None:
        """Cross-kind conversion (int field matched to a float field)."""
        with self.pool.scratch_int() as r, self.pool.scratch_float() as f:
            for i in range(count):
                self.em.ld(r, "src", src_off + i * src_size, src_size, signed=signed, endian=self.src_endian)
                self.em.cvt_i2f(f, r)
                self.em.stf(f, "dst", dst_off + i * dst_size, dst_size, endian=self.dst_endian)

    def convert_float_to_int(
        self, dst_off: int, dst_size: int, src_off: int, src_size: int, *, count: int = 1
    ) -> None:
        with self.pool.scratch_int() as r, self.pool.scratch_float() as f:
            for i in range(count):
                self.em.ldf(f, "src", src_off + i * src_size, src_size, endian=self.src_endian)
                self.em.cvt_f2i(r, f)
                self.em.st(r, "dst", dst_off + i * dst_size, dst_size, endian=self.dst_endian)

    def zero_fill(self, dst_off: int, length: int) -> None:
        """Default a missing field to zero bytes."""
        with self.pool.scratch_int() as r:
            self.em.movi(r, 0)
            pos = 0
            while pos < length:
                chunk = 8 if length - pos >= 8 else 1
                self.em.st(r, "dst", dst_off + pos, chunk, endian=self.dst_endian)
                pos += chunk

    # -- loop scaffolding ----------------------------------------------------

    def _counted_loop(self, count: int, body, *, src_stride: int, dst_stride: int) -> None:
        em = self.em
        idx_src = self.pool.get_int()
        idx_dst = self.pool.get_int()
        end_src = self.pool.get_int()
        try:
            em.movi(idx_src, 0)
            em.movi(idx_dst, 0)
            em.movi(end_src, count * src_stride)
            top = em.new_label("loop")
            done = em.new_label("done")
            em.label(top)
            em.bge(idx_src, end_src, done)
            body(idx_src, idx_dst)
            em.addi(idx_src, idx_src, src_stride)
            em.addi(idx_dst, idx_dst, dst_stride)
            em.jmp(top)
            em.label(done)
        finally:
            self.pool.put_int(end_src)
            self.pool.put_int(idx_dst)
            self.pool.put_int(idx_src)

    def finish(self) -> Program:
        self.em.ret()
        return self.em.seal()
