"""Code buffer and emission API, mirroring Vcode's ``v_*`` macros.

Real Vcode emits native machine instructions "directly into a memory
buffer [that] can be executed without reference to an external compiler or
linker".  Here the buffer holds :class:`~repro.vcode.isa.Instr` objects and
sealing resolves labels to instruction indices, producing an executable
:class:`Program` for the VM.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .isa import Instr, Op, validate


@dataclass(frozen=True)
class Program:
    """A sealed instruction sequence with resolved branch targets."""

    instrs: tuple[Instr, ...]
    label_index: dict[str, int] = field(hash=False, compare=False, default_factory=dict)

    def __len__(self) -> int:
        return len(self.instrs)

    def disassemble(self) -> str:
        lines = []
        for i, ins in enumerate(self.instrs):
            prefix = f"{i:4d}: "
            lines.append(prefix + repr(ins))
        return "\n".join(lines)


class Emitter:
    """Append-only instruction buffer with Vcode-style emit methods.

    Register operands are plain integers (``r3`` is just ``3``); use
    :class:`~repro.vcode.regalloc.RegisterPool` to manage them the way
    Vcode's ``v_getreg``/``v_putreg`` do.
    """

    def __init__(self) -> None:
        self._instrs: list[Instr] = []
        self._labels: set[str] = set()
        self._label_counter = 0
        self._sealed = False

    # -- plumbing ---------------------------------------------------------

    def _emit(self, op: Op, *args) -> None:
        if self._sealed:
            raise RuntimeError("cannot emit into a sealed program")
        instr = Instr(op, args)
        validate(instr)
        self._instrs.append(instr)

    def new_label(self, stem: str = "L") -> str:
        self._label_counter += 1
        return f"{stem}{self._label_counter}"

    def seal(self) -> Program:
        """Resolve labels and freeze the program (Vcode's ``v_end``)."""
        label_index: dict[str, int] = {}
        for i, ins in enumerate(self._instrs):
            if ins.op is Op.LABEL:
                name = ins.args[0]
                if name in label_index:
                    raise ValueError(f"duplicate label {name!r}")
                label_index[name] = i
        for ins in self._instrs:
            if ins.op in (Op.JMP, Op.BLT, Op.BGE, Op.BEQ, Op.BNE):
                target = ins.args[-1]
                if target not in label_index:
                    raise ValueError(f"undefined label {target!r}")
        self._sealed = True
        return Program(tuple(self._instrs), label_index)

    # -- memory -----------------------------------------------------------

    def ld(self, dst: int, base: str, offset: int, size: int, *, signed: bool, endian: str) -> None:
        """Load an integer of ``size`` bytes from ``base[offset]``."""
        self._emit(Op.LD, dst, base, offset, size, signed, endian)

    def st(self, src: int, base: str, offset: int, size: int, *, endian: str) -> None:
        """Store the low ``size`` bytes of integer register ``src``."""
        self._emit(Op.ST, src, base, offset, size, True, endian)

    def ldf(self, dst: int, base: str, offset: int, size: int, *, endian: str) -> None:
        self._emit(Op.LDF, dst, base, offset, size, endian)

    def stf(self, src: int, base: str, offset: int, size: int, *, endian: str) -> None:
        self._emit(Op.STF, src, base, offset, size, endian)

    def memcpy(self, dst_base: str, dst_off: int, src_base: str, src_off: int, length: int) -> None:
        self._emit(Op.MEMCPY, dst_base, dst_off, src_base, src_off, length)

    # -- ALU --------------------------------------------------------------

    def movi(self, dst: int, imm: int) -> None:
        self._emit(Op.MOVI, dst, imm)

    def mov(self, dst: int, src: int) -> None:
        self._emit(Op.MOV, dst, src)

    def add(self, dst: int, a: int, b: int) -> None:
        self._emit(Op.ADD, dst, a, b)

    def addi(self, dst: int, a: int, imm: int) -> None:
        self._emit(Op.ADDI, dst, a, imm)

    def sub(self, dst: int, a: int, b: int) -> None:
        self._emit(Op.SUB, dst, a, b)

    def muli(self, dst: int, a: int, imm: int) -> None:
        self._emit(Op.MULI, dst, a, imm)

    # -- conversions ------------------------------------------------------

    def fmov(self, dst: int, src: int) -> None:
        self._emit(Op.FMOV, dst, src)

    def cvt_i2f(self, dst_f: int, src_r: int) -> None:
        self._emit(Op.CVT_I2F, dst_f, src_r)

    def cvt_f2i(self, dst_r: int, src_f: int) -> None:
        self._emit(Op.CVT_F2I, dst_r, src_f)

    def cvt_f2f(self, dst_f: int, src_f: int) -> None:
        """Float-to-float move; width changes happen at store time."""
        self._emit(Op.CVT_F2F, dst_f, src_f)

    # -- control ----------------------------------------------------------

    def label(self, name: str) -> None:
        if name in self._labels:
            raise ValueError(f"label {name!r} already placed")
        self._labels.add(name)
        self._emit(Op.LABEL, name)

    def jmp(self, target: str) -> None:
        self._emit(Op.JMP, target)

    def blt(self, a: int, b: int, target: str) -> None:
        self._emit(Op.BLT, a, b, target)

    def bge(self, a: int, b: int, target: str) -> None:
        self._emit(Op.BGE, a, b, target)

    def beq(self, a: int, b: int, target: str) -> None:
        self._emit(Op.BEQ, a, b, target)

    def bne(self, a: int, b: int, target: str) -> None:
        self._emit(Op.BNE, a, b, target)

    def ret(self) -> None:
        self._emit(Op.RET)
