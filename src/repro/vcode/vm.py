"""Executor for sealed vcode programs.

Stands in for the host CPU that would run Vcode's generated native
instructions.  Programs run against named memory segments (``"src"`` is
the receive buffer, ``"dst"`` the native record being built); integer
registers hold Python ints (wrapped to 64 bits on store), float registers
hold Python floats.

Addressing: load/store ``offset`` operands are either an immediate int or
a ``(reg, disp)`` pair meaning ``regs[reg] + disp`` — the two addressing
modes conversion loops need.
"""

from __future__ import annotations

import struct
from typing import Mapping

from .emitter import Program
from .isa import Op

_INT_FMT = {
    (1, True): "b",
    (1, False): "B",
    (2, True): "h",
    (2, False): "H",
    (4, True): "i",
    (4, False): "I",
    (8, True): "q",
    (8, False): "Q",
}
_FLOAT_FMT = {4: "f", 8: "d"}

_MASK64 = (1 << 64) - 1


class VMError(RuntimeError):
    """Fault while executing a vcode program (bad address, bad opcode)."""


class VM:
    """A reusable virtual CPU; ``run`` executes one program to RET.

    With ``collect_stats=True``, ``op_counts`` records how many times each
    opcode executed — the instruction-level measure the optimizer ablation
    uses to show generated-code improvements independent of wall time.
    """

    def __init__(self, max_steps: int = 50_000_000, collect_stats: bool = False):
        self.max_steps = max_steps
        self.regs = [0] * 32
        self.fregs = [0.0] * 16
        self.steps = 0
        self.collect_stats = collect_stats
        self.op_counts: dict[str, int] = {}

    def run(self, program: Program, memory: Mapping[str, bytearray | memoryview | bytes]) -> int:
        """Execute ``program`` against ``memory`` segments.

        Returns the value of r1 (the return-value register).  Segments
        written to (ST/STF/MEMCPY destinations) must be mutable.
        """
        regs = self.regs
        fregs = self.fregs
        for i in range(len(regs)):
            regs[i] = 0
        instrs = program.instrs
        labels = program.label_index
        pc = 0
        steps = 0
        limit = self.max_steps
        n = len(instrs)
        try:
            while pc < n:
                steps += 1
                if steps > limit:
                    raise VMError(f"step limit {limit} exceeded (runaway loop?)")
                ins = instrs[pc]
                op = ins.op
                a = ins.args
                if self.collect_stats:
                    self.op_counts[op.value] = self.op_counts.get(op.value, 0) + 1
                if op is Op.LD:
                    dst, base, offset, size, signed, endian = a
                    pos = regs[offset[0]] + offset[1] if type(offset) is tuple else offset
                    fmt = (">" if endian == "big" else "<") + _INT_FMT[(size, signed)]
                    regs[dst] = struct.unpack_from(fmt, memory[base], pos)[0]
                elif op is Op.ST:
                    src, base, offset, size, _signed, endian = a
                    pos = regs[offset[0]] + offset[1] if type(offset) is tuple else offset
                    value = regs[src]
                    # Truncate to the stored width, as a real store would.
                    value &= (1 << (8 * size)) - 1
                    fmt = (">" if endian == "big" else "<") + _INT_FMT[(size, False)]
                    struct.pack_into(fmt, memory[base], pos, value)
                elif op is Op.LDF:
                    dst, base, offset, size, endian = a
                    pos = regs[offset[0]] + offset[1] if type(offset) is tuple else offset
                    fmt = (">" if endian == "big" else "<") + _FLOAT_FMT[size]
                    fregs[dst] = struct.unpack_from(fmt, memory[base], pos)[0]
                elif op is Op.STF:
                    src, base, offset, size, endian = a
                    pos = regs[offset[0]] + offset[1] if type(offset) is tuple else offset
                    fmt = (">" if endian == "big" else "<") + _FLOAT_FMT[size]
                    struct.pack_into(fmt, memory[base], pos, fregs[src])
                elif op is Op.MEMCPY:
                    dst_base, dst_off, src_base, src_off, length = a
                    dpos = regs[dst_off[0]] + dst_off[1] if type(dst_off) is tuple else dst_off
                    spos = regs[src_off[0]] + src_off[1] if type(src_off) is tuple else src_off
                    src_mem = memory[src_base]
                    memory[dst_base][dpos : dpos + length] = bytes(src_mem[spos : spos + length])
                elif op is Op.MOVI:
                    regs[a[0]] = a[1]
                elif op is Op.MOV:
                    regs[a[0]] = regs[a[1]]
                elif op is Op.ADD:
                    regs[a[0]] = (regs[a[1]] + regs[a[2]]) & _MASK64
                elif op is Op.ADDI:
                    regs[a[0]] = (regs[a[1]] + a[2]) & _MASK64
                elif op is Op.SUB:
                    regs[a[0]] = (regs[a[1]] - regs[a[2]]) & _MASK64
                elif op is Op.MULI:
                    regs[a[0]] = (regs[a[1]] * a[2]) & _MASK64
                elif op is Op.FMOV:
                    fregs[a[0]] = fregs[a[1]]
                elif op is Op.CVT_I2F:
                    fregs[a[0]] = float(_signed64(regs[a[1]]))
                elif op is Op.CVT_F2I:
                    regs[a[0]] = int(fregs[a[1]]) & _MASK64
                elif op is Op.CVT_F2F:
                    fregs[a[0]] = fregs[a[1]]
                elif op is Op.LABEL:
                    pass
                elif op is Op.JMP:
                    pc = labels[a[0]]
                elif op is Op.BLT:
                    if _signed64(regs[a[0]]) < _signed64(regs[a[1]]):
                        pc = labels[a[2]]
                elif op is Op.BGE:
                    if _signed64(regs[a[0]]) >= _signed64(regs[a[1]]):
                        pc = labels[a[2]]
                elif op is Op.BEQ:
                    if regs[a[0]] == regs[a[1]]:
                        pc = labels[a[2]]
                elif op is Op.BNE:
                    if regs[a[0]] != regs[a[1]]:
                        pc = labels[a[2]]
                elif op is Op.RET:
                    break
                else:  # pragma: no cover - enum is closed
                    raise VMError(f"unknown opcode {op}")
                pc += 1
        except (struct.error, IndexError, KeyError) as exc:
            raise VMError(f"fault at pc={pc} ({instrs[pc]!r}): {exc}") from exc
        self.steps = steps
        return regs[1]


def _signed64(value: int) -> int:
    value &= _MASK64
    return value - (1 << 64) if value >= (1 << 63) else value
