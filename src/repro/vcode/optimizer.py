"""Peephole optimization passes over sealed vcode programs.

The paper's future work includes "the development of selected runtime
binary code optimization methods".  These passes are the classic ones a
runtime code generator applies cheaply, in one linear scan each:

* **move coalescing** — runs of pure load/store element moves (no byte
  order or width change) advancing contiguously collapse into one
  ``memcpy``;
* **immediate-add folding** — chains of ``addi r, r, k`` in straight-line
  code fold into one instruction;
* **dead-immediate elimination** — a ``movi`` overwritten before any read
  in the same basic block is dropped;
* **label pruning** — labels no branch targets are removed.

All passes preserve observable behaviour (verified by the differential
tests in ``tests/vcode/test_optimizer.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .emitter import Program
from .isa import Instr, Op

_BRANCH_OPS = (Op.JMP, Op.BLT, Op.BGE, Op.BEQ, Op.BNE)


@dataclass
class OptimizationStats:
    """What each pass changed (ablation/inspection instrumentation)."""

    moves_coalesced: int = 0
    memcpys_created: int = 0
    addis_folded: int = 0
    dead_movis_removed: int = 0
    labels_pruned: int = 0
    passes: list[str] = field(default_factory=list)

    @property
    def total_removed(self) -> int:
        return (
            self.moves_coalesced
            + self.addis_folded
            + self.dead_movis_removed
            + self.labels_pruned
            - self.memcpys_created
        )


def optimize(program: Program) -> tuple[Program, OptimizationStats]:
    """Run all passes; returns the optimized program and statistics."""
    stats = OptimizationStats()
    instrs = list(program.instrs)
    instrs = _coalesce_moves(instrs, stats)
    instrs = _fold_addi(instrs, stats)
    instrs = _remove_dead_movi(instrs, stats)
    instrs = _prune_labels(instrs, stats)
    return _reseal(instrs), stats


def _reseal(instrs: list[Instr]) -> Program:
    label_index = {
        ins.args[0]: i for i, ins in enumerate(instrs) if ins.op is Op.LABEL
    }
    return Program(tuple(instrs), label_index)


def _is_pure_move_pair(a: Instr, b: Instr) -> bool:
    """LD r, src, imm / ST r, dst, imm with identical width and endian:
    a byte-identical element move."""
    if a.op is not Op.LD or b.op is not Op.ST:
        return False
    ld_dst, _, ld_off, ld_size, _sgn, ld_end = a.args
    st_src, _, st_off, st_size, _sgn2, st_end = b.args
    return (
        ld_dst == st_src
        and isinstance(ld_off, int)
        and isinstance(st_off, int)
        and ld_size == st_size
        and ld_end == st_end
    )


def _coalesce_moves(instrs: list[Instr], stats: OptimizationStats) -> list[Instr]:
    out: list[Instr] = []
    i = 0
    n = len(instrs)
    while i < n:
        # collect a maximal run of contiguous pure move pairs
        run: list[tuple[Instr, Instr]] = []
        j = i
        while j + 1 < n and _is_pure_move_pair(instrs[j], instrs[j + 1]):
            if run:
                prev_ld, prev_st = run[-1]
                size = prev_ld.args[3]
                if (
                    instrs[j].args[1] != prev_ld.args[1]
                    or instrs[j + 1].args[1] != prev_st.args[1]
                    or instrs[j].args[2] != prev_ld.args[2] + size
                    or instrs[j + 1].args[2] != prev_st.args[2] + size
                ):
                    break
            run.append((instrs[j], instrs[j + 1]))
            j += 2
        if len(run) >= 2:
            first_ld, first_st = run[0]
            last_ld, _ = run[-1]
            length = last_ld.args[2] + last_ld.args[3] - first_ld.args[2]
            out.append(
                Instr(
                    Op.MEMCPY,
                    (first_st.args[1], first_st.args[2], first_ld.args[1], first_ld.args[2], length),
                )
            )
            # The replaced loads had a register side effect: each scratch
            # register ends up holding its last loaded value, and later
            # code may legitimately read it.  Re-emit the final load of
            # each distinct register to preserve semantics exactly.
            last_load_of: dict[int, Instr] = {}
            for ld, _st in run:
                last_load_of[ld.args[0]] = ld
            restored = list(last_load_of.values())
            out.extend(restored)
            stats.moves_coalesced += len(run)
            stats.memcpys_created += 1
            i = j
        else:
            out.append(instrs[i])
            i += 1
    stats.passes.append("coalesce_moves")
    return out


def _fold_addi(instrs: list[Instr], stats: OptimizationStats) -> list[Instr]:
    out: list[Instr] = []
    for ins in instrs:
        if (
            ins.op is Op.ADDI
            and out
            and out[-1].op is Op.ADDI
            and ins.args[0] == ins.args[1] == out[-1].args[0] == out[-1].args[1]
        ):
            prev = out.pop()
            out.append(Instr(Op.ADDI, (ins.args[0], ins.args[1], prev.args[2] + ins.args[2])))
            stats.addis_folded += 1
        else:
            out.append(ins)
    stats.passes.append("fold_addi")
    return out


def _reads_register(ins: Instr, reg: int) -> bool:
    """Conservative: does this instruction read integer register ``reg``?"""
    op = ins.op
    if op in (Op.LD, Op.LDF):
        offset = ins.args[2]
        return isinstance(offset, tuple) and offset[0] == reg
    if op in (Op.ST, Op.STF):
        offset = ins.args[2]
        if isinstance(offset, tuple) and offset[0] == reg:
            return True
        return op is Op.ST and ins.args[0] == reg
    if op is Op.MEMCPY:
        return any(isinstance(a, tuple) and a[0] == reg for a in ins.args)
    if op in (Op.MOV, Op.CVT_I2F):
        return ins.args[1] == reg
    if op in (Op.ADD, Op.SUB):
        return reg in (ins.args[1], ins.args[2])
    if op in (Op.ADDI, Op.MULI):
        return ins.args[1] == reg
    if op in (Op.BLT, Op.BGE, Op.BEQ, Op.BNE):
        return reg in (ins.args[0], ins.args[1])
    if op is Op.RET:
        return reg == 1  # r1 is the return register
    return False


def _writes_int_register(ins: Instr) -> int | None:
    if ins.op in (Op.LD, Op.MOVI, Op.MOV, Op.ADD, Op.ADDI, Op.SUB, Op.MULI, Op.CVT_F2I):
        return ins.args[0]
    return None


def _remove_dead_movi(instrs: list[Instr], stats: OptimizationStats) -> list[Instr]:
    """Drop a MOVI whose register is rewritten before any read, within a
    basic block (scan stops at labels/branches)."""
    dead: set[int] = set()
    n = len(instrs)
    for i, ins in enumerate(instrs):
        if ins.op is not Op.MOVI:
            continue
        reg = ins.args[0]
        for j in range(i + 1, n):
            nxt = instrs[j]
            if nxt.op is Op.LABEL or nxt.op in _BRANCH_OPS or nxt.op is Op.RET:
                break
            if _reads_register(nxt, reg):
                break
            if _writes_int_register(nxt) == reg:
                dead.add(i)
                break
    if dead:
        stats.dead_movis_removed = len(dead)
        instrs = [ins for i, ins in enumerate(instrs) if i not in dead]
    stats.passes.append("remove_dead_movi")
    return instrs


def _prune_labels(instrs: list[Instr], stats: OptimizationStats) -> list[Instr]:
    targets = {
        ins.args[-1] for ins in instrs if ins.op in _BRANCH_OPS
    }
    out = []
    for ins in instrs:
        if ins.op is Op.LABEL and ins.args[0] not in targets:
            stats.labels_pruned += 1
            continue
        out.append(ins)
    stats.passes.append("prune_labels")
    return out
