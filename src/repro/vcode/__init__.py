"""Vcode-like dynamic code generation substrate.

A virtual RISC instruction set (after Engler's Vcode, which the paper's
PBIO uses for receiver-side DCG), an emitter with ``v_*``-style macros, a
register pool, and a VM executor.  See DESIGN.md for how this maps to the
paper's native code generation.
"""

from .isa import FLOAT_WIDTHS, INT_WIDTHS, NUM_FLOAT_REGS, NUM_INT_REGS, Instr, Op
from .emitter import Emitter, Program
from .regalloc import RegisterExhausted, RegisterPool
from .vm import VM, VMError
from .macros import UNROLL_LIMIT, ConversionEmitter
from .optimizer import OptimizationStats, optimize

__all__ = [
    "Instr",
    "Op",
    "INT_WIDTHS",
    "FLOAT_WIDTHS",
    "NUM_INT_REGS",
    "NUM_FLOAT_REGS",
    "Emitter",
    "Program",
    "RegisterPool",
    "RegisterExhausted",
    "VM",
    "VMError",
    "ConversionEmitter",
    "UNROLL_LIMIT",
    "optimize",
    "OptimizationStats",
]
