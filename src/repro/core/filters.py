"""DCG-compiled record filters and projections.

The paper's closing section points at placing "selected message
operations ... `into' the communication co-processors"; in the PBIO/ECho
lineage this became *derived event channels*: receivers (or intermediaries)
run small filter/projection functions against incoming records **without
fully decoding them**.  This module reproduces that capability with the
same DCG approach as the converters:

* a filter is written against *field names* in a tiny, safe expression
  language (comparisons, arithmetic, boolean operators);
* when a wire format arrives, the expression is compiled — once per
  (expression, wire format) pair — into Python code whose field reads are
  precompiled ``struct`` accessors at literal offsets into the message
  payload;
* evaluation then touches only the referenced fields: a predicate over 2
  scalars in a 100 KB record reads 12 bytes, not 100 KB.

Example::

    flt = RecordFilter(ctx, "telemetry", "temperature > 700.0 and unit != 2")
    for message in stream:
        if flt.matches(message):
            ...
"""

from __future__ import annotations

import ast
import struct
from typing import Any, Callable

from repro.abi import PrimKind
from repro.abi.types import struct_code

from .context import IOContext
from .errors import ConversionError
from .formats import IOFormat

_ALLOWED_NODES = (
    ast.Expression,
    ast.BoolOp,
    ast.And,
    ast.Or,
    ast.UnaryOp,
    ast.Not,
    ast.USub,
    ast.BinOp,
    ast.Add,
    ast.Sub,
    ast.Mult,
    ast.Div,
    ast.Mod,
    ast.Compare,
    ast.Eq,
    ast.NotEq,
    ast.Lt,
    ast.LtE,
    ast.Gt,
    ast.GtE,
    ast.Name,
    ast.Load,
    ast.Constant,
)


class FilterError(ConversionError):
    """Invalid filter expression or unfilterable field."""


def _parse_expression(expression: str) -> tuple[ast.Expression, set[str]]:
    """Parse and validate a filter expression; return (tree, field names)."""
    try:
        tree = ast.parse(expression, mode="eval")
    except SyntaxError as exc:
        raise FilterError(f"invalid filter expression: {exc}") from exc
    names: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, _ALLOWED_NODES):
            raise FilterError(
                f"filter expressions may not contain {type(node).__name__} nodes"
            )
        if isinstance(node, ast.Constant) and not isinstance(node.value, (int, float, bool)):
            raise FilterError("filter constants must be numbers or booleans")
        if isinstance(node, ast.Name):
            names.add(node.id)
    return tree, names


def _scalar_accessor(fmt: IOFormat, name: str) -> tuple[struct.Struct, int]:
    """A precompiled (struct, offset) accessor for a scalar field."""
    if name not in fmt:
        raise FilterError(f"format {fmt.name!r} has no field {name!r}")
    f = fmt[name]
    if f.count != 1 or f.kind in (PrimKind.CHAR, PrimKind.STRING):
        raise FilterError(f"field {name!r} is not a scalar numeric field")
    if f.kind is PrimKind.FLOAT and fmt.float_format != "ieee754":
        raise FilterError(
            f"field {name!r}: filters read {fmt.float_format} floats only via "
            f"full decode (struct accessors assume IEEE)"
        )
    endian = ">" if fmt.byte_order == "big" else "<"
    return struct.Struct(endian + struct_code(f.kind, f.size)), f.offset


def compile_predicate(fmt: IOFormat, expression: str) -> Callable[[bytes], bool]:
    """Compile ``expression`` against one wire format.

    The returned callable takes the record *payload* (native bytes in the
    wire format) and returns a bool, reading only the referenced fields.
    """
    tree, names = _parse_expression(expression)
    namespace: dict[str, Any] = {}
    reads = []
    for name in sorted(names):
        st, offset = _scalar_accessor(fmt, name)
        acc = f"_get_{name}"
        namespace[acc] = st.unpack_from
        reads.append(f"    {name} = {acc}(src, {offset})[0]")
    body = ast.unparse(tree)
    source = "def predicate(src):\n" + "\n".join(reads) + f"\n    return bool({body})\n"
    code = compile(source, f"<pbio-filter:{fmt.name}>", "exec")
    exec(code, namespace)
    return namespace["predicate"]


def compile_projection(fmt: IOFormat, field_names: list[str]) -> Callable[[bytes], dict]:
    """Compile a projection extracting only ``field_names`` from payloads.

    Dotted names select scalar fields inside nested records.
    """
    namespace: dict[str, Any] = {}
    items = []
    for i, name in enumerate(field_names):
        st, offset = _scalar_accessor(fmt, name)
        acc = f"_get{i}"  # index-based: names may be dotted
        namespace[acc] = st.unpack_from
        items.append(f"{name!r}: {acc}(src, {offset})[0]")
    source = "def project(src):\n    return {" + ", ".join(items) + "}\n"
    code = compile(source, f"<pbio-projection:{fmt.name}>", "exec")
    exec(code, namespace)
    return namespace["project"]


class RecordFilter:
    """A named-format filter that adapts to whatever wire formats arrive.

    Bound to an :class:`IOContext` for format lookup; compiles (and
    caches) one predicate per distinct incoming wire format, so upgraded
    senders with extended formats keep matching without changes.
    """

    def __init__(self, ctx: IOContext, format_name: str, expression: str):
        _parse_expression(expression)  # validate eagerly
        self.ctx = ctx
        self.format_name = format_name
        self.expression = expression
        self._compiled: dict[bytes, Callable[[bytes], bool]] = {}
        #: Wire formats this *instance* had to look up (a shared-cache hit
        #: still counts: the instance saw a new format).  Cross-instance
        #: sharing is visible in ``ctx.cache.metrics`` instead
        #: (``filters_compiled`` / ``filter_cache_hits``).
        self.compilations = 0

    def matches(self, message, *, header=None) -> bool:
        """Evaluate the filter against one data message.

        ``header`` forwards an already-parsed message header to the
        decode pipeline (single-parse discipline: relays sniff every
        frame once and thread the result here).
        """
        # The context's decode pipeline owns header parsing and the
        # remote-format lookup; the payload is a memoryview — the whole
        # point is reading 2 fields out of a possibly 100 KB record
        # without touching the rest.
        fmt, payload = self.ctx.pipeline.open_data(message, header=header)
        if fmt.name != self.format_name:
            return False
        predicate = self._compiled.get(fmt.fingerprint)
        if predicate is None:
            # Compilation goes through the context's converter cache, so
            # N same-predicate subscribers sharing a cache compile once.
            predicate, _built = self.ctx.cache.resolve_compiled(
                "filter",
                self.expression,
                fmt,
                lambda: compile_predicate(fmt, self.expression),
            )
            self._compiled[fmt.fingerprint] = predicate
            self.compilations += 1
        return predicate(payload)


class RecordProjector:
    """Like :class:`RecordFilter`, but extracts a subset of fields."""

    def __init__(self, ctx: IOContext, format_name: str, field_names: list[str]):
        self.ctx = ctx
        self.format_name = format_name
        self.field_names = list(field_names)
        self._compiled: dict[bytes, Callable[[bytes], dict]] = {}

    def project(self, message, *, header=None) -> dict | None:
        """Extract the fields from one data message (None if another type)."""
        fmt, payload = self.ctx.pipeline.open_data(message, header=header)
        if fmt.name != self.format_name:
            return None
        projector = self._compiled.get(fmt.fingerprint)
        if projector is None:
            projector, _built = self.ctx.cache.resolve_compiled(
                "projection",
                tuple(self.field_names),
                fmt,
                lambda: compile_projection(fmt, self.field_names),
            )
            self._compiled[fmt.fingerprint] = projector
        return projector(payload)
