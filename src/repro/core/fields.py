"""Wire-level field descriptors.

PBIO "writers must provide descriptions of the names, types, sizes and
positions of the fields in the records they are writing" (Section 3).
A :class:`WireField` is exactly that tuple — the machine-independent
*semantic* kind plus the machine-*dependent* size and offset the field has
in the sender's natural representation.  A list of them plus byte order
and record length fully describes a wire format.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.abi import LaidOutField, PrimKind, StructLayout

from .errors import FormatError
from .safety import check_field_shape


@dataclass(frozen=True)
class WireField:
    """One field as described in format meta-information."""

    name: str
    kind: PrimKind
    size: int  # element size in bytes, in the sender's representation
    offset: int  # byte offset within the record
    count: int = 1  # elements (1 = scalar; chars: buffer length)

    def __post_init__(self) -> None:
        if self.size <= 0 or self.count <= 0 or self.offset < 0:
            raise FormatError(f"invalid wire field geometry: {self}")

    @property
    def total_size(self) -> int:
        return self.size * self.count

    @property
    def end(self) -> int:
        return self.offset + self.total_size

    @classmethod
    def from_laid_out(cls, f: LaidOutField) -> "WireField":
        """Describe a natively laid-out field for transmission."""
        if f.is_string:
            return cls(f.name, PrimKind.STRING, f.elem_size, f.offset, 1)
        return cls(f.name, f.kind, f.elem_size, f.offset, f.count)


def wire_fields_from_layout(layout: StructLayout) -> tuple[WireField, ...]:
    """The full wire-field list of a native layout, in offset order."""
    return tuple(WireField.from_laid_out(f) for f in layout.fields)


def validate_wire_fields(fields: tuple[WireField, ...], record_size: int) -> None:
    """Check a received field list for internal consistency.

    Meta-information arrives from the network; a malformed description
    must be rejected before any converter is generated from it.  The
    invariants: unique names, every field inside the record, no two
    fields overlapping, element sizes the conversion layer has a
    primitive for, and strings as scalar pointers.
    """
    if record_size < 0:
        raise FormatError(f"negative record size {record_size}")
    seen: set[str] = set()
    for f in fields:
        if f.name in seen:
            raise FormatError(f"duplicate field {f.name!r} in wire format")
        seen.add(f.name)
        check_field_shape(f.kind, f.size, f.name)
        if f.end > record_size:
            raise FormatError(
                f"field {f.name!r} extends to {f.end}, past record size {record_size}"
            )
        if f.kind is PrimKind.STRING and f.count != 1:
            raise FormatError(f"string field {f.name!r} cannot be an array")
    ordered = sorted(fields, key=lambda f: f.offset)
    for a, b in zip(ordered, ordered[1:]):
        if b.offset < a.end:
            raise FormatError(f"fields {a.name!r} and {b.name!r} overlap")
