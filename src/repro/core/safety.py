"""Resource limits and structural validation for untrusted decode input.

Every PBIO decode path is an untrusted-input parser: receivers interpret
foreign bytes — sender-native NDR records plus self-describing
meta-information — that may arrive damaged (lossy links, torn files) or
hostile (a peer that lies about sizes and counts).  This module is the
shared frontend those paths consult before allocating or generating
anything:

* :class:`DecodeLimits` — per-endpoint resource ceilings (message size,
  meta size, field count, name length, array count, per-peer format
  quota, converter-cache quota).  Enforced by
  :meth:`~repro.core.formats.IOFormat.from_meta_bytes`, the
  :class:`~repro.core.runtime.DecodePipeline` (and therefore
  ``IOContext.receive``, channels, relays, filters and RPC), and
  :class:`~repro.core.files.PbioFileReader`.  Violations raise
  :class:`~repro.core.errors.LimitError`.
* :func:`check_field_shape` — the structural invariant a received field
  description must satisfy before any converter is generated from it:
  the (kind, size) pair must name a primitive the conversion layer can
  actually handle.  Offset/overlap/record-bound invariants live in
  :func:`repro.core.fields.validate_wire_fields`; together they are the
  "validated decode frontend".

``limits=None`` anywhere in the API means *no resource checks* — the
seed behaviour, appropriate for trusted in-process wiring and used as
the baseline by ``benchmarks/bench_safety_overhead.py``.  The default
everywhere else is :data:`DEFAULT_LIMITS`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.abi import PrimKind
from repro.abi.types import STRUCT_CODES

from .errors import FormatError, LimitError

#: Element sizes the conversion layer supports per semantic kind.
#: Derived from the struct-code table (what converters can be generated
#: for); STRING fields are pointers, so their size is a pointer width.
ALLOWED_SIZES: dict[PrimKind, frozenset[int]] = {
    kind: frozenset(size for (k, size) in STRUCT_CODES if k is kind)
    for kind in (PrimKind.INTEGER, PrimKind.UNSIGNED, PrimKind.FLOAT,
                 PrimKind.CHAR, PrimKind.BOOLEAN)
}
ALLOWED_SIZES[PrimKind.STRING] = frozenset((4, 8))


@dataclass(frozen=True)
class DecodeLimits:
    """Resource ceilings applied to untrusted decode input.

    All bounds are inclusive.  The defaults are deliberately generous —
    orders of magnitude above anything the benchmarks or the paper's
    workloads produce — so they only ever trip on damage or hostility.

    ==========================  ================================================
    ``max_message_size``        whole-message bytes accepted by any ingress path
    ``max_meta_size``           bytes of one format meta-information block
    ``max_record_size``         declared record size in received meta-information
    ``max_fields``              fields per received format description
    ``max_name_length``         bytes of a format/field/operation name
    ``max_count``               elements in one array field (chars: buffer len)
    ``max_formats_per_peer``    remote formats registered per peer context id
    ``max_cache_entries``       converter-cache entries before FIFO eviction
    ==========================  ================================================
    """

    max_message_size: int = 64 * 1024 * 1024
    max_meta_size: int = 64 * 1024
    max_record_size: int = 64 * 1024 * 1024
    max_fields: int = 4096
    max_name_length: int = 1024
    max_count: int = 1 << 24
    max_formats_per_peer: int = 1024
    max_cache_entries: int = 4096

    def __post_init__(self) -> None:
        for name in self.__dataclass_fields__:
            if getattr(self, name) < 1:
                raise ValueError(f"DecodeLimits.{name} must be >= 1")

    def check_message_size(self, nbytes: int) -> None:
        """Reject a whole message larger than the configured ceiling."""
        if nbytes > self.max_message_size:
            raise LimitError(
                f"message of {nbytes} bytes exceeds max_message_size "
                f"({self.max_message_size})"
            )

    def check_meta_size(self, nbytes: int) -> None:
        if nbytes > self.max_meta_size:
            raise LimitError(
                f"format meta-information of {nbytes} bytes exceeds "
                f"max_meta_size ({self.max_meta_size})"
            )

    @classmethod
    def unlimited(cls) -> "DecodeLimits":
        """Limits so large they never trip (validation logic still runs)."""
        big = 1 << 62
        return cls(
            max_message_size=big,
            max_meta_size=big,
            max_record_size=big,
            max_fields=big,
            max_name_length=big,
            max_count=big,
            max_formats_per_peer=big,
            max_cache_entries=big,
        )


#: The limits applied wherever the caller does not choose their own.
DEFAULT_LIMITS = DecodeLimits()


def check_field_shape(kind: PrimKind, size: int, name: str) -> None:
    """Reject a field whose element size is inconsistent with its kind.

    Meta-information arrives from the network; a size the conversion
    layer has no primitive for must fail *here*, as a
    :class:`FormatError`, not later as a ``struct.error``/``KeyError``
    leaking out of converter generation.
    """
    allowed = ALLOWED_SIZES.get(kind)
    if allowed is None or size not in allowed:
        raise FormatError(
            f"field {name!r}: size {size} is invalid for kind {kind.value!r} "
            f"(allowed: {sorted(allowed) if allowed else 'none'})"
        )
