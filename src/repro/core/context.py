"""IOContext: the public PBIO API.

One :class:`IOContext` represents a communicating party on a particular
(simulated) machine.  Writers register the formats of the records they
produce; readers declare the formats they expect.  Encoding is NDR
(header + native bytes, no translation); decoding matches the incoming
wire format against the expected native format by field name and converts
only where representations actually differ, using a converter generated
at run time (DCG) or the table-driven interpreter.

Typical use::

    sender = IOContext(machine=abi.X86)
    receiver = IOContext(machine=abi.SPARC_V8)

    fmt = sender.register_format(schema)
    receiver.expect(schema)

    announce = sender.announce(fmt)          # once per format
    message = sender.encode(fmt, record)     # per record
    receiver.receive(announce)
    result = receiver.receive(message)       # dict (or use decode_view)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.abi import (
    MachineDescription,
    NativeCodec,
    RecordSchema,
    RecordView,
    StructLayout,
    codec_for,
    layout_record,
)

from . import encoder as enc
from .conversion import InterpretedConverter, build_plan, generate_converter
from .errors import FormatError, MessageError
from .formats import IOFormat
from .matching import MatchResult, match_formats
from .registry import FormatRegistry


@dataclass(frozen=True)
class FormatHandle:
    """A writer-side registered format: everything needed to emit records."""

    format_id: int
    iofmt: IOFormat
    layout: StructLayout
    codec: NativeCodec

    @property
    def name(self) -> str:
        return self.iofmt.name


@dataclass
class ContextStats:
    """Instrumentation counters (used by ablation benchmarks)."""

    converters_generated: int = 0
    converter_cache_hits: int = 0
    zero_copy_decodes: int = 0
    converted_decodes: int = 0
    generation_time_s: float = 0.0


class IOContext:
    """One PBIO party bound to a simulated machine.

    ``conversion`` selects the receiver-side strategy:

    * ``"dcg"`` (default) — runtime-generated specialized converters;
    * ``"interpreted"``   — the table-driven interpreter;
    * ``"vcode"``         — DCG lowered onto the virtual RISC VM
      (mechanism-fidelity mode; slow under Python, see DESIGN.md).
    """

    def __init__(
        self,
        machine: MachineDescription,
        *,
        conversion: str = "dcg",
        context_id: int | None = None,
    ):
        if conversion not in ("dcg", "interpreted", "vcode"):
            raise ValueError(f"unknown conversion mode {conversion!r}")
        self.machine = machine
        self.conversion = conversion
        self.registry = FormatRegistry(context_id)
        self.stats = ContextStats()
        self._handles: dict[int, FormatHandle] = {}
        self._expected: dict[str, IOFormat] = {}  # format name -> native format
        self._converters: dict[tuple[bytes, bytes], Callable[[bytes], bytes]] = {}
        self._zero_copy: dict[tuple[bytes, bytes], bool] = {}
        self._converter_sources: dict[tuple[bytes, bytes], str] = {}

    @property
    def context_id(self) -> int:
        return self.registry.context_id

    # -- writer side --------------------------------------------------------

    def register_format(self, schema: RecordSchema) -> FormatHandle:
        """Register a record format this context will write."""
        layout = layout_record(schema, self.machine)
        iofmt = IOFormat.from_layout(layout)
        fmt_id = self.registry.register_local(iofmt)
        handle = FormatHandle(fmt_id, iofmt, layout, codec_for(layout))
        self._handles[fmt_id] = handle
        return handle

    def announce(self, handle: FormatHandle) -> bytes:
        """The one-time format meta-information message for ``handle``."""
        return enc.encode_format_message(self.context_id, handle.format_id, handle.iofmt)

    def encode_native(self, handle: FormatHandle, native) -> bytes:
        """Encode a record already in native binary form (contiguous)."""
        return enc.encode_data_message(self.context_id, handle.format_id, native)

    def encode_segments(self, handle: FormatHandle, native) -> list:
        """Zero-copy NDR encode: ``[header, native buffer]`` segments."""
        return enc.encode_data_segments(self.context_id, handle.format_id, native)

    def encode(self, handle: FormatHandle, record: dict[str, Any]) -> bytes:
        """Convenience: encode a value dict (simulating the application's
        in-memory struct) and wrap it in a data message."""
        return self.encode_native(handle, handle.codec.encode(record))

    # -- reader side ----------------------------------------------------------

    def expect(self, schema: RecordSchema) -> IOFormat:
        """Declare the native format this context wants records decoded to.

        Registered per format *name*; incoming wire formats with the same
        name are matched against it field by field.
        """
        layout = layout_record(schema, self.machine)
        iofmt = IOFormat.from_layout(layout)
        self._expected[schema.name] = iofmt
        return iofmt

    def receive(self, message) -> dict[str, Any] | None:
        """Process one incoming message.

        Format announcements are absorbed (returns ``None``); data
        messages return the decoded record dict.
        """
        msg_type, context_id, format_id, _ = enc.unpack_header(message)
        if msg_type == enc.MSG_FORMAT:
            self._absorb_announcement(message, context_id, format_id)
            return None
        return self.decode(message)

    def _absorb_announcement(self, message, context_id: int, format_id: int) -> None:
        meta = memoryview(message)[enc.HEADER_SIZE :]
        fmt = IOFormat.from_meta_bytes(meta)
        self.registry.register_remote(context_id, format_id, fmt)

    # decoding ---------------------------------------------------------------

    def _wire_format_of(self, message) -> tuple[IOFormat, memoryview]:
        msg_type, context_id, format_id, payload_len = enc.unpack_header(message)
        if msg_type != enc.MSG_DATA:
            raise MessageError("expected a data message")
        payload = memoryview(message)[enc.HEADER_SIZE :]
        if len(payload) != payload_len:
            raise MessageError(
                f"payload length mismatch: header says {payload_len}, got {len(payload)}"
            )
        wire_fmt = self.registry.remote_format(context_id, format_id)
        return wire_fmt, payload

    def _native_format_for(self, wire_fmt: IOFormat) -> IOFormat:
        native = self._expected.get(wire_fmt.name)
        if native is None:
            raise FormatError(
                f"no expected format declared for {wire_fmt.name!r}; "
                f"call expect() or use reflection to inspect the format"
            )
        return native

    def _converter_for(self, wire_fmt: IOFormat, native: IOFormat):
        """Return (zero_copy, converter-or-None), building and caching."""
        key = (wire_fmt.fingerprint, native.fingerprint)
        zero_copy = self._zero_copy.get(key)
        if zero_copy is None:
            match = match_formats(wire_fmt, native)
            zero_copy = match.zero_copy
            self._zero_copy[key] = zero_copy
            if not zero_copy:
                self._converters[key] = self._build_converter(wire_fmt, native, match)
        elif not zero_copy and key not in self._converters:  # pragma: no cover
            self._converters[key] = self._build_converter(wire_fmt, native, None)
        else:
            self.stats.converter_cache_hits += 1
        return zero_copy, self._converters.get(key)

    def _build_converter(self, wire_fmt: IOFormat, native: IOFormat, match: MatchResult | None):
        plan = build_plan(wire_fmt, native, match)
        if self.conversion == "interpreted":
            converter = InterpretedConverter(plan)
            self.stats.converters_generated += 1
            self._converter_sources[(wire_fmt.fingerprint, native.fingerprint)] = plan.describe()
            return converter
        generated = generate_converter(
            plan, backend="python" if self.conversion == "dcg" else "vcode"
        )
        self.stats.converters_generated += 1
        self.stats.generation_time_s += generated.generation_time_s
        self._converter_sources[(wire_fmt.fingerprint, native.fingerprint)] = generated.source
        return generated.convert

    def converter_sources(self, format_name: str | None = None) -> dict[str, str]:
        """Inspect the conversion code this context has generated.

        Returns ``{"<wire> -> <native>": source}`` for every converter
        built so far (generated Python for DCG, vcode disassembly for the
        vcode backend, the plan description for the interpreter) —
        a debugging window into what DCG actually emitted.
        """
        out = {}
        for (wire_fp, native_fp), source in self._converter_sources.items():
            wire_name = native_name = "?"
            for _, _, fmt in self.registry.remote_formats():
                if fmt.fingerprint == wire_fp:
                    wire_name = fmt.name
            for fmt in self._expected.values():
                if fmt.fingerprint == native_fp:
                    native_name = fmt.name
            if format_name is not None and format_name not in (wire_name, native_name):
                continue
            out[f"{wire_name} -> {native_name}"] = source
        return out

    def decode_native(self, message) -> bytes:
        """Decode to record bytes in this context's native layout."""
        wire_fmt, payload = self._wire_format_of(message)
        native = self._native_format_for(wire_fmt)
        zero_copy, converter = self._converter_for(wire_fmt, native)
        if zero_copy:
            self.stats.zero_copy_decodes += 1
            return bytes(payload)
        self.stats.converted_decodes += 1
        return converter(payload)

    def decode_view(self, message) -> RecordView:
        """Decode to a :class:`RecordView`.

        In the homogeneous (matching-layout) case the view references the
        *message buffer itself* — received data used directly, no copy.
        """
        wire_fmt, payload = self._wire_format_of(message)
        native = self._native_format_for(wire_fmt)
        layout = self._expected_layout(native)
        zero_copy, converter = self._converter_for(wire_fmt, native)
        if zero_copy:
            self.stats.zero_copy_decodes += 1
            return RecordView(layout, payload)
        self.stats.converted_decodes += 1
        return RecordView(layout, converter(payload))

    def decode(self, message) -> dict[str, Any]:
        """Decode to a value dict (fully materialized)."""
        return self.decode_view(message).to_dict()

    def _expected_layout(self, native: IOFormat) -> StructLayout:
        if native.layout is None:  # pragma: no cover - expect() always sets it
            raise FormatError(f"expected format {native.name!r} has no local layout")
        return native.layout
