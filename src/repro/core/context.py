"""IOContext: the public PBIO API.

One :class:`IOContext` represents a communicating party on a particular
(simulated) machine.  Writers register the formats of the records they
produce; readers declare the formats they expect.  Encoding is NDR
(header + native bytes, no translation); decoding matches the incoming
wire format against the expected native format by field name and converts
only where representations actually differ, using a converter generated
at run time (DCG) or the table-driven interpreter.

All receive-side work is carried out by the context's
:class:`~repro.core.runtime.DecodePipeline`; converters live in a
:class:`~repro.core.runtime.ConverterCache` that is private per context
by default but can be shared by any number of same-process contexts
(``cache=`` parameter or :meth:`IOContext.use_cache`), so N subscribers
on identical machines pay converter generation once, not N times.

Typical use::

    sender = IOContext(machine=abi.X86)
    receiver = IOContext(machine=abi.SPARC_V8)

    fmt = sender.register_format(schema)
    receiver.expect(schema)

    announce = sender.announce(fmt)          # once per format
    message = sender.encode(fmt, record)     # per record
    receiver.receive(announce)
    result = receiver.receive(message)       # dict (or use decode_view)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.abi import (
    MachineDescription,
    NativeCodec,
    RecordSchema,
    RecordView,
    StructLayout,
    codec_for,
    layout_record,
)

from . import encoder as enc
from .formats import IOFormat
from .registry import FormatRegistry
from .runtime import ContextStats, ConverterCache, DecodePipeline, Metrics
from .safety import DEFAULT_LIMITS, DecodeLimits


@dataclass(frozen=True)
class FormatHandle:
    """A writer-side registered format: everything needed to emit records."""

    format_id: int
    iofmt: IOFormat
    layout: StructLayout
    codec: NativeCodec

    @property
    def name(self) -> str:
        return self.iofmt.name


class IOContext:
    """One PBIO party bound to a simulated machine.

    ``conversion`` selects the receiver-side strategy:

    * ``"dcg"`` (default) — runtime-generated specialized converters;
    * ``"interpreted"``   — the table-driven interpreter;
    * ``"vcode"``         — DCG lowered onto the virtual RISC VM
      (mechanism-fidelity mode; slow under Python, see DESIGN.md).

    ``cache`` may name a :class:`ConverterCache` shared with other
    contexts; the default is a private cache (seed-compatible).  The
    cache key includes the machine ABI and conversion mode, so sharing
    between heterogeneous contexts is always safe.

    ``limits`` (a :class:`~repro.core.safety.DecodeLimits`) bounds what
    this context will accept from peers — message size, meta size,
    field counts, per-peer format quota.  The default is
    :data:`~repro.core.safety.DEFAULT_LIMITS`; pass ``None`` to disable
    resource checks entirely (trusted in-process wiring only).
    """

    def __init__(
        self,
        machine: MachineDescription,
        *,
        conversion: str = "dcg",
        context_id: int | None = None,
        cache: ConverterCache | None = None,
        metrics: Metrics | None = None,
        limits: DecodeLimits | None = DEFAULT_LIMITS,
        format_service=None,
    ):
        if conversion not in ("dcg", "interpreted", "vcode"):
            raise ValueError(f"unknown conversion mode {conversion!r}")
        self.machine = machine
        self.conversion = conversion
        self.registry = FormatRegistry(context_id)
        self.metrics = metrics if metrics is not None else Metrics()
        self.stats = ContextStats(self.metrics)
        self.limits = limits
        self._handles: dict[int, FormatHandle] = {}
        self._expected: dict[str, IOFormat] = {}  # format name -> native format
        self.pipeline = DecodePipeline(
            registry=self.registry,
            expected=self._expected,
            machine=machine,
            conversion=conversion,
            cache=cache,
            metrics=self.metrics,
            limits=limits,
        )
        self.format_service = None
        if format_service is not None:
            self.use_format_service(format_service)

    @property
    def context_id(self) -> int:
        return self.registry.context_id

    @property
    def cache(self) -> ConverterCache:
        """The converter cache this context resolves against."""
        return self.pipeline.cache

    def use_cache(self, cache: ConverterCache) -> "IOContext":
        """Re-point this context at ``cache`` (e.g. a channel-wide shared
        cache).  Entries built in the previous cache are not migrated —
        they are rebuilt on demand in the new one."""
        self.pipeline.set_cache(cache)
        return self

    def use_format_service(self, service) -> "IOContext":
        """Attach a :class:`~repro.fmtserv.FormatService` (or ``None``).

        With a service attached, :meth:`announce_compact` emits 28-byte
        token announcements when the service can vouch for the format,
        and the decode pipeline resolves incoming token announcements
        through the service's cache ladder.  Detaching (``None``)
        restores pure inline behaviour.
        """
        self.format_service = service
        self.pipeline.resolver = service.resolve if service is not None else None
        return self

    # -- writer side --------------------------------------------------------

    def register_format(self, schema: RecordSchema) -> FormatHandle:
        """Register a record format this context will write."""
        layout = layout_record(schema, self.machine)
        iofmt = IOFormat.from_layout(layout)
        fmt_id = self.registry.register_local(iofmt)
        handle = FormatHandle(fmt_id, iofmt, layout, codec_for(layout))
        self._handles[fmt_id] = handle
        return handle

    def announce(self, handle: FormatHandle) -> bytes:
        """The one-time format meta-information message for ``handle``."""
        return enc.encode_format_message(self.context_id, handle.format_id, handle.iofmt)

    def announce_compact(self, handle: FormatHandle) -> bytes:
        """The cheapest safe announcement for ``handle``.

        A 28-byte token message when the attached format service holds a
        token for the format (the server has the meta, so any receiver
        can resolve it); the classic inline meta message otherwise.
        Token announcements are only ever emitted once the server has
        confirmed registration — a token in flight always has meta
        behind it.
        """
        svc = self.format_service
        if svc is not None:
            token = svc.publish(handle.iofmt)
            if token is not None:
                return enc.encode_token_message(
                    self.context_id,
                    handle.format_id,
                    handle.iofmt.fingerprint,
                    token,
                )
            svc.note_inline_fallback()
        return self.announce(handle)

    def encode_native(self, handle: FormatHandle, native) -> bytes:
        """Encode a record already in native binary form (contiguous)."""
        return enc.encode_data_message(self.context_id, handle.format_id, native)

    def encode_segments(self, handle: FormatHandle, native) -> list:
        """Zero-copy NDR encode: ``[header, native buffer]`` segments."""
        return enc.encode_data_segments(self.context_id, handle.format_id, native)

    def encode(self, handle: FormatHandle, record: dict[str, Any]) -> bytes:
        """Convenience: encode a value dict (simulating the application's
        in-memory struct) and wrap it in a data message."""
        return self.encode_native(handle, handle.codec.encode(record))

    def write_batch(self, handle: FormatHandle, records) -> list[bytes]:
        """Encode many value dicts into data messages in one call.

        The encoded frames are what a ``send_many``-capable transport
        coalesces into one vectored syscall, and what a receiver's
        :meth:`read_batch` decodes with one batch-converter pass.
        """
        cid, fid = self.context_id, handle.format_id
        codec = handle.codec
        return [
            enc.encode_data_message(cid, fid, codec.encode(record))
            for record in records
        ]

    # -- reader side ----------------------------------------------------------

    def expect(self, schema: RecordSchema) -> IOFormat:
        """Declare the native format this context wants records decoded to.

        Registered per format *name*; incoming wire formats with the same
        name are matched against it field by field.
        """
        layout = layout_record(schema, self.machine)
        iofmt = IOFormat.from_layout(layout)
        self._expected[schema.name] = iofmt
        return iofmt

    def receive(self, message) -> dict[str, Any] | None:
        """Process one incoming message.

        Format announcements are absorbed (returns ``None``); data
        messages return the decoded record dict.
        """
        return self.pipeline.ingest(message)

    # decoding ---------------------------------------------------------------

    def decode_native(self, message) -> bytes:
        """Decode to record bytes in this context's native layout."""
        return self.pipeline.decode_native(message)

    def decode_view(self, message) -> RecordView:
        """Decode to a :class:`RecordView`.

        In the homogeneous (matching-layout) case the view references the
        *message buffer itself* — received data used directly, no copy.
        """
        return self.pipeline.decode_view(message)

    def decode(self, message) -> dict[str, Any]:
        """Decode to a value dict (fully materialized)."""
        return self.pipeline.decode(message)

    def read_batch(self, messages, *, on_error: str = "raise") -> list:
        """Process many incoming messages in one pass.

        Announcements are absorbed in order (their result slots are
        ``None``); consecutive same-format data messages share one
        columnar conversion.  Results are identical to looping
        :meth:`receive`.  ``on_error="skip"`` confines a rejection to its
        own frame (slot stays ``None``) instead of raising.
        """
        return self.pipeline.decode_batch(messages, on_error=on_error)

    def converter_sources(self, format_name: str | None = None) -> dict[str, str]:
        """Inspect the conversion code available to this context.

        Returns ``{"<wire> -> <native>": source}`` for every converter in
        this context's cache matching its machine and conversion mode
        (generated Python for DCG, vcode disassembly for the vcode
        backend, the plan description for the interpreter) — a debugging
        window into what DCG actually emitted.  With a shared cache this
        includes converters built by sibling contexts on the same machine.
        """
        return self.cache.sources(
            format_name, conversion=self.conversion, machine=self.machine
        )
