"""Announcement negotiation: token-first sending, inline recovery.

The format service replaces full meta-information announcements with
28-byte ``(fingerprint, token)`` messages — but a receiver can only use
one if it can resolve the fingerprint (cache, disk, or format server).
When it cannot, the wire protocol recovers on the link itself: the
receiver sends ``MSG_FORMAT_REQUEST`` back to the announcer, *holds*
data messages of the unresolved format, and releases them — in order —
once the announcer replies with a classic inline ``MSG_FORMAT``.  No
message is lost, no decode is attempted against an unknown format, and
the slow path ends in exactly the pre-service protocol.

Two pieces, shared by :class:`~repro.core.connection.PbioConnection`
and the RPC endpoints so the recovery dance exists once:

* :class:`InboundNegotiator` — the receive-side state machine;
* :class:`Announcer` — the send-side dedup, keyed by *live link
  identity* ``(transport_token, reconnect generation)`` rather than by
  format id alone, so a re-dialled transport is never mistaken for one
  that already heard the announcements.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.net.transport import transport_token

from . import encoder as enc
from .context import FormatHandle, IOContext
from .errors import LimitError, TokenResolutionError

#: Hold-queue ceiling per unresolved format: a peer that streams data
#: forever without ever answering the meta request is either broken or
#: hostile, and memory must stay bounded either way.
DEFAULT_MAX_HELD = 1024


def link_key(transport) -> tuple[int, int]:
    """Identity of the *current incarnation* of a link.

    ``transport_token`` distinguishes transport objects (a re-dialled
    replacement is a new object, hence a new token); ``generation``
    distinguishes incarnations of a self-reconnecting transport (same
    object, fresh link after each re-dial).  Announcement state keyed by
    anything less survives a reconnect it should not.
    """
    return (transport_token(transport), getattr(transport, "generation", 0))


class Announcer:
    """Send-side announcement dedup for one context over any links."""

    def __init__(self, ctx: IOContext):
        self.ctx = ctx
        self._sent: set[tuple[int, int, int]] = set()
        self._link_memo: tuple | None = None  # (transport, gen, key prefix)

    def ensure_announced(
        self,
        transport,
        handle: FormatHandle,
        *,
        send: Callable[[bytes], None] | None = None,
    ) -> None:
        """Announce ``handle`` if this link incarnation has not heard it.

        The announcement is compact (token) when the context has a
        format service that can vouch for the format, inline otherwise —
        :meth:`IOContext.announce_compact` decides.
        """
        for frame in self.pending_announcements(transport, handle):
            (send or transport.send)(frame)

    def pending_announcements(self, transport, handle: FormatHandle) -> list[bytes]:
        """Announcement frames still owed to this link for ``handle``.

        Empty once the link incarnation has heard the format.  The frames
        are marked sent on return — the caller *must* put them on the
        wire (batch senders splice them ahead of the data frames so the
        whole burst is one vectored send).
        """
        gen = getattr(transport, "generation", 0)
        memo = self._link_memo
        if memo is not None and memo[0] is transport and memo[1] == gen:
            prefix = memo[2]
        else:
            prefix = link_key(transport)
            self._link_memo = (transport, gen, prefix)
        key = (prefix[0], prefix[1], handle.format_id)
        if key in self._sent:
            return []
        self._sent.add(key)
        return [self.ctx.announce_compact(handle)]


class InboundNegotiator:
    """Receive-side handling of announcements, tokens and meta requests.

    Feed every inbound frame to :meth:`offer`; consume decodable frames
    (data messages, or foreign frames such as RPC call headers) from
    :meth:`next_ready`.  Announcements are absorbed, token announcements
    resolved (or converted into a ``MSG_FORMAT_REQUEST`` on the
    back-channel), meta requests answered from the context's local
    registry, and data messages for still-unresolved formats held until
    their inline meta arrives.

    Within one format, held messages release in arrival order; frames of
    *other* formats are not delayed behind an unresolved one (per-format
    ordering, the same guarantee a lossy-link replay gives).
    """

    def __init__(
        self,
        ctx: IOContext,
        send: Callable[[bytes], None],
        *,
        max_held: int = DEFAULT_MAX_HELD,
    ):
        self.ctx = ctx
        self._send = send
        self.max_held = max_held
        self._pending: dict[tuple[int, int], bytes] = {}  # (cid, fid) -> fingerprint
        self._held: dict[tuple[int, int], list[bytes]] = {}
        self._ready: deque[bytes] = deque()
        #: Set when the peer sent a goodbye ping (it is draining).
        self.peer_goodbye = False

    def next_ready(self) -> bytes | None:
        """The next frame ready for the caller, if any."""
        return self._ready.popleft() if self._ready else None

    def filter(self, frame) -> bytes | None:
        """:meth:`offer` + :meth:`next_ready` fused for pull-style loops.

        In the steady state (nothing held, nothing pending) a data
        message or foreign frame is returned directly, skipping the
        ready queue; otherwise the frame takes the full :meth:`offer`
        path and whatever is ready next comes back (``None`` if the
        frame was absorbed by the negotiation).
        """
        return self.filter_parsed(frame)[0]

    def filter_parsed(self, frame) -> tuple[bytes | None, tuple | None]:
        """:meth:`filter`, also returning the parsed header tuple.

        Steady-state data frames come back as ``(frame, header)`` where
        ``header`` is the validated ``(msg_type, context_id, format_id,
        payload_len)`` — callers hand it to
        ``DecodePipeline.decode(message, header=...)`` so those 16 bytes
        are parsed exactly once per message, not once in the negotiation
        sniff and again in the pipeline.  Foreign frames return
        ``(frame, None)``; everything else takes the :meth:`offer` path
        and returns ``(next_ready(), None)``.
        """
        if not self._ready and not self._pending:
            header = enc.try_unpack_header(frame)
            if header is None or header[0] == enc.MSG_DATA:
                return (frame if isinstance(frame, bytes) else bytes(frame), header)
            self.offer(frame, header=header)
            return (self.next_ready(), None)
        self.offer(frame)
        return (self.next_ready(), None)

    @property
    def unresolved(self) -> int:
        """Formats currently awaiting an inline re-announcement."""
        return len(self._pending)

    def offer(self, frame, *, header: tuple | None = None) -> None:
        """Process one inbound frame (absorb, hold, request, or enqueue).

        ``header`` may carry the already-parsed tuple from
        :func:`~repro.core.encoder.try_unpack_header`; the frame is then
        never re-parsed here (one validation per frame, end to end).
        """
        if header is None:
            header = enc.try_unpack_header(frame)
        if header is None:
            # A foreign frame (RPC call header, fault text): the caller's
            # business.
            self._ready.append(frame if isinstance(frame, bytes) else bytes(frame))
            return
        kind = header[0]
        if kind == enc.MSG_DATA:
            if self._pending:
                key = (header[1], header[2])
                if key in self._pending:
                    self._hold(key, frame)
                    return
            self._ready.append(frame if isinstance(frame, bytes) else bytes(frame))
            return
        if kind == enc.MSG_FORMAT:
            self.ctx.pipeline.absorb(frame, header[1], header[2])
            self._release((header[1], header[2]))
            return
        if kind == enc.MSG_FORMAT_TOKEN:
            try:
                self.ctx.pipeline.absorb_token(frame)
            except TokenResolutionError as exc:
                self._request_meta(exc)
            else:
                # A re-announcement that resolves now (service recovered):
                # anything held from the earlier failure is decodable.
                self._release((header[1], header[2]))
            return
        if kind == enc.MSG_PING:
            nonce, _depth = enc.parse_ping(frame)
            if nonce == enc.GOODBYE_NONCE:
                self.peer_goodbye = True  # peer is draining; no pong expected
            else:
                self._send(enc.encode_pong(nonce))
            return
        if kind == enc.MSG_PONG:
            # A pong reaching the negotiator means no HeartbeatMonitor
            # polled it first; it carries no format state — drop it.
            return
        self._serve_meta(enc.parse_format_request(frame))

    def _hold(self, key: tuple[int, int], frame) -> None:
        held = self._held.setdefault(key, [])
        if len(held) >= self.max_held:
            raise LimitError(
                f"{len(held)} messages held for unresolved format id "
                f"{key[1]} from context {key[0]:#010x}; peer never "
                f"answered the meta request"
            )
        held.append(bytes(frame))
        self.ctx.metrics.inc("fmtserv.messages_held")

    def pump(self, transport) -> None:
        """Drain frames available *right now* (non-blocking transports).

        Lets a sender opportunistically answer meta requests between its
        own sends; transports without a ``pending()`` probe are skipped.
        """
        pending = getattr(transport, "pending", None)
        if pending is None:
            return
        while pending():
            self.offer(transport.recv())

    # -- internals -----------------------------------------------------------

    def _release(self, key: tuple[int, int]) -> None:
        self._pending.pop(key, None)
        held = self._held.pop(key, None)
        if held:
            self.ctx.metrics.inc("fmtserv.messages_released", len(held))
            self._ready.extend(held)

    def _request_meta(self, exc: TokenResolutionError) -> None:
        key = (exc.context_id, exc.format_id)
        if key in self._pending:
            return  # request already on the wire; keep holding
        self._pending[key] = exc.fingerprint
        self._held.setdefault(key, [])
        self._send(enc.encode_format_request(self.ctx.context_id, exc.fingerprint))
        self.ctx.metrics.inc("fmtserv.meta_requests_sent")

    def _serve_meta(self, fingerprint: bytes) -> None:
        fmt_id = self.ctx.registry.local_id_for_fingerprint(fingerprint)
        if fmt_id is None:
            # Not ours (mis-routed or stale): ignoring is safe — the
            # requester keeps holding and will re-request or time out.
            self.ctx.metrics.inc("fmtserv.meta_requests_unknown")
            return
        fmt = self.ctx.registry.local_format(fmt_id)
        self._send(enc.encode_format_message(self.ctx.context_id, fmt_id, fmt))
        self.ctx.metrics.inc("fmtserv.meta_requests_served")
