"""Format registry: format-id assignment and meta-information exchange.

PBIO transmits full format meta-information *once* per format, after
which data messages carry only a compact format id (the role played by
the format server in the full PBIO/FFS lineage).  Each writing context
owns an id space, scoped by a random 32-bit context id so ids from
different writers never collide at a receiver.
"""

from __future__ import annotations

import os

from .errors import FormatError, UnknownFormatError
from .formats import IOFormat


def fresh_context_id() -> int:
    """A random 32-bit context id from the OS entropy pool.

    Deliberately *not* the :mod:`random` module: application code that
    seeds the global generator (simulations, chaos tests) would otherwise
    mint colliding context ids for every writer created after the seed —
    and two writers sharing a context id corrupt each other's id space at
    every receiver.  Tests that need determinism inject ``context_id``
    explicitly instead of seeding.
    """
    return int.from_bytes(os.urandom(4), "big")


class FormatRegistry:
    """Bidirectional registry of formats known to one context.

    * Local formats (this context will write them): fingerprint -> id.
    * Remote formats (announced by peers): (context_id, id) -> IOFormat.
    """

    def __init__(self, context_id: int | None = None):
        self.context_id = (
            context_id if context_id is not None else fresh_context_id()
        )
        self._local_by_fp: dict[bytes, int] = {}
        self._local_by_id: dict[int, IOFormat] = {}
        self._remote: dict[tuple[int, int], IOFormat] = {}
        self._next_id = 1
        #: count of meta messages processed (ablation instrumentation)
        self.announcements_received = 0

    # -- local side ---------------------------------------------------------

    def register_local(self, fmt: IOFormat) -> int:
        """Assign (or return the existing) id for a format this context
        writes.  Registration is idempotent by fingerprint."""
        existing = self._local_by_fp.get(fmt.fingerprint)
        if existing is not None:
            return existing
        fmt_id = self._next_id
        self._next_id += 1
        self._local_by_fp[fmt.fingerprint] = fmt_id
        self._local_by_id[fmt_id] = fmt
        return fmt_id

    def local_format(self, fmt_id: int) -> IOFormat:
        try:
            return self._local_by_id[fmt_id]
        except KeyError:
            raise FormatError(f"no local format with id {fmt_id}") from None

    def local_ids(self) -> list[int]:
        return sorted(self._local_by_id)

    def local_id_for_fingerprint(self, fingerprint: bytes) -> int | None:
        """The local id registered for ``fingerprint``, if any (the
        lookup a ``MSG_FORMAT_REQUEST`` resolves against)."""
        return self._local_by_fp.get(bytes(fingerprint))

    # -- remote side ----------------------------------------------------------

    def register_remote(self, context_id: int, fmt_id: int, fmt: IOFormat) -> None:
        """Record a format announced by a peer context."""
        key = (context_id, fmt_id)
        known = self._remote.get(key)
        if known is not None and known.fingerprint != fmt.fingerprint:
            raise FormatError(
                f"context {context_id:#010x} re-announced id {fmt_id} with a "
                f"different format ({known.name!r} vs {fmt.name!r})"
            )
        self._remote[key] = fmt
        self.announcements_received += 1

    def remote_format(self, context_id: int, fmt_id: int) -> IOFormat:
        try:
            return self._remote[(context_id, fmt_id)]
        except KeyError:
            raise UnknownFormatError(context_id, fmt_id) from None

    def knows_remote(self, context_id: int, fmt_id: int) -> bool:
        return (context_id, fmt_id) in self._remote

    def remote_count(self, context_id: int) -> int:
        """Formats currently registered for one peer context (the
        quantity :class:`~repro.core.safety.DecodeLimits` caps per peer)."""
        return sum(1 for (cid, _) in self._remote if cid == context_id)

    def remote_formats(self) -> list[tuple[int, int, IOFormat]]:
        return [(c, i, f) for (c, i), f in sorted(self._remote.items())]
