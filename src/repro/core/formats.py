"""IOFormat: a named record format and its wire meta-information.

An :class:`IOFormat` is what PBIO transmits *once* per format — "format
meta-information, somewhat like an XML-style description of the message
content" (Section 4.4).  It binds a format name to the field list, byte
order and record length of the describing party's natural representation,
and serializes to/from a compact binary meta message.
"""

from __future__ import annotations

import hashlib
import struct

from repro.abi import PrimKind, StructLayout

from .errors import FormatError, LimitError
from .fields import WireField, validate_wire_fields, wire_fields_from_layout
from .safety import DEFAULT_LIMITS, DecodeLimits

_META_MAGIC = b"PBFM"
_FINGERPRINT_SIZE = 20  # sha1 digest appended as an integrity trailer
_U8 = struct.Struct(">B")
_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")

_KIND_CODES: dict[PrimKind, int] = {
    PrimKind.INTEGER: 0,
    PrimKind.UNSIGNED: 1,
    PrimKind.FLOAT: 2,
    PrimKind.CHAR: 3,
    PrimKind.BOOLEAN: 4,
    PrimKind.STRING: 5,
}
_CODE_KINDS = {v: k for k, v in _KIND_CODES.items()}


class IOFormat:
    """A record format: name, fields, byte order, record size.

    Instances describe either a *native* format (derived from a local
    :class:`StructLayout`) or a *wire* format (reconstructed from received
    meta-information; ``layout`` is then ``None``).
    """

    def __init__(
        self,
        name: str,
        fields: tuple[WireField, ...],
        byte_order: str,
        record_size: int,
        *,
        float_format: str = "ieee754",
        layout: StructLayout | None = None,
    ):
        if byte_order not in ("big", "little"):
            raise FormatError(f"bad byte order {byte_order!r}")
        if float_format not in ("ieee754", "vax"):
            raise FormatError(f"bad float format {float_format!r}")
        validate_wire_fields(fields, record_size)
        self.name = name
        self.fields = fields
        self.byte_order = byte_order
        self.float_format = float_format
        self.record_size = record_size
        self.layout = layout
        self._by_name = {f.name: f for f in fields}
        self.fingerprint = self._fingerprint()
        # Attribute, not property: the decode hot path consults it per
        # message to validate payload length against the record size.
        self.has_strings = any(f.kind is PrimKind.STRING for f in fields)

    @classmethod
    def from_layout(cls, layout: StructLayout) -> "IOFormat":
        """Describe a local native layout (the writer's side of Section 3)."""
        return cls(
            layout.schema.name,
            wire_fields_from_layout(layout),
            layout.machine.byte_order,
            layout.size,
            float_format=layout.machine.float_format,
            layout=layout,
        )

    # -- identity ----------------------------------------------------------

    def _fingerprint(self) -> bytes:
        h = hashlib.sha1()
        h.update(self.name.encode())
        h.update(self.byte_order.encode())
        h.update(self.float_format.encode())
        h.update(str(self.record_size).encode())
        for f in self.fields:
            h.update(f"{f.name}|{f.kind.value}|{f.size}|{f.offset}|{f.count};".encode())
        return h.digest()

    def __eq__(self, other) -> bool:
        return isinstance(other, IOFormat) and self.fingerprint == other.fingerprint

    def __hash__(self) -> int:
        return hash(self.fingerprint)

    # -- field access ------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> WireField:
        return self._by_name[name]

    def field_names(self) -> list[str]:
        return [f.name for f in self.fields]

    # -- meta-information wire form -----------------------------------------

    def to_meta_bytes(self) -> bytes:
        """Serialize the format description for transmission.

        The block ends with the format's 20-byte fingerprint, so a
        receiver can verify the description survived the wire intact
        before generating any converter from it.  (Readers still accept
        trailer-less blocks for PBIO v1 file compatibility.)
        """
        name_b = self.name.encode("utf-8")
        parts = [
            _META_MAGIC,
            _U8.pack(1 if self.byte_order == "little" else 0),
            _U8.pack(1 if self.float_format == "vax" else 0),
            _U32.pack(self.record_size),
            _U16.pack(len(name_b)),
            name_b,
            _U16.pack(len(self.fields)),
        ]
        for f in self.fields:
            fn = f.name.encode("utf-8")
            parts.append(_U16.pack(len(fn)))
            parts.append(fn)
            parts.append(_U8.pack(_KIND_CODES[f.kind]))
            parts.append(_U8.pack(f.size))
            parts.append(_U32.pack(f.offset))
            parts.append(_U32.pack(f.count))
        parts.append(self.fingerprint)
        return b"".join(parts)

    @classmethod
    def from_meta_bytes(
        cls,
        data: bytes | memoryview,
        *,
        limits: DecodeLimits | None = DEFAULT_LIMITS,
    ) -> "IOFormat":
        """Reconstruct a wire format from received meta-information.

        This is an untrusted-input parser: every length is bounds-checked
        against ``limits`` (pass ``None`` to skip resource checks) and
        against the data actually present, every failure — including the
        stdlib's ``struct.error``/``UnicodeDecodeError`` — surfaces as a
        :class:`FormatError` carrying the byte offset, and a block ending
        in a fingerprint trailer is verified against the description it
        carries.  Only then is the structural validator
        (:func:`~repro.core.fields.validate_wire_fields`) run.
        """
        data = bytes(data)
        if limits is not None:
            limits.check_meta_size(len(data))
        if data[:4] != _META_MAGIC:
            raise FormatError("bad format meta magic")
        pos = 4

        def need(n: int, what: str) -> None:
            if pos + n > len(data):
                raise FormatError(
                    f"truncated format meta-information: {what} needs {n} "
                    f"byte(s) at offset {pos}, have {len(data) - pos}"
                )

        try:
            need(8, "fixed header")
            little = _U8.unpack_from(data, pos)[0]
            pos += 1
            vax_floats = _U8.unpack_from(data, pos)[0]
            pos += 1
            record_size = _U32.unpack_from(data, pos)[0]
            pos += 4
            name_len = _U16.unpack_from(data, pos)[0]
            pos += 2
            if limits is not None and (
                record_size > limits.max_record_size or name_len > limits.max_name_length
            ):
                raise LimitError(
                    f"format meta declares record_size={record_size}, "
                    f"name_len={name_len}; exceeds limits"
                )
            need(name_len, "format name")
            name = data[pos : pos + name_len].decode("utf-8")
            pos += name_len
            need(2, "field count")
            nfields = _U16.unpack_from(data, pos)[0]
            pos += 2
            if limits is not None and nfields > limits.max_fields:
                raise LimitError(f"format meta declares {nfields} fields; exceeds limits")
            fields = []
            for i in range(nfields):
                need(2, f"field {i} name length")
                fn_len = _U16.unpack_from(data, pos)[0]
                pos += 2
                if limits is not None and fn_len > limits.max_name_length:
                    raise LimitError(f"field {i} name of {fn_len} bytes exceeds limits")
                need(fn_len, f"field {i} name")
                fname = data[pos : pos + fn_len].decode("utf-8")
                pos += fn_len
                need(10, f"field {i} descriptor")
                kind_code = _U8.unpack_from(data, pos)[0]
                pos += 1
                size = _U8.unpack_from(data, pos)[0]
                pos += 1
                offset = _U32.unpack_from(data, pos)[0]
                pos += 4
                count = _U32.unpack_from(data, pos)[0]
                pos += 4
                if kind_code not in _CODE_KINDS:
                    raise FormatError(f"unknown field kind code {kind_code}")
                if limits is not None and count > limits.max_count:
                    raise LimitError(f"field {fname!r} count {count} exceeds limits")
                fields.append(WireField(fname, _CODE_KINDS[kind_code], size, offset, count))
        except (struct.error, UnicodeDecodeError, IndexError, OverflowError) as exc:
            raise FormatError(
                f"malformed format meta-information at offset {pos}: {exc}"
            ) from exc
        fmt = cls(
            name,
            tuple(fields),
            "little" if little else "big",
            record_size,
            float_format="vax" if vax_floats else "ieee754",
        )
        trailing = len(data) - pos
        if trailing == _FINGERPRINT_SIZE:
            if data[pos:] != fmt.fingerprint:
                raise FormatError(
                    "format meta-information fingerprint mismatch "
                    "(description corrupted in transit)"
                )
        elif trailing != 0:  # v1 blocks end exactly at the last field
            raise FormatError(
                f"{trailing} byte(s) of trailing garbage after format meta-information"
            )
        return fmt

    def describe(self) -> str:
        """Human-readable rendering (the reflection API's pretty form)."""
        lines = [
            f"format {self.name!r}: {self.record_size} bytes, "
            f"{self.byte_order}-endian, {self.float_format} floats, "
            f"{len(self.fields)} fields"
        ]
        for f in self.fields:
            dim = f"[{f.count}]" if f.count > 1 else ""
            lines.append(
                f"  @{f.offset:5d} {f.kind.value}{dim} {f.name} (elem {f.size} B)"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"IOFormat({self.name!r}, {len(self.fields)} fields, {self.record_size} B, {self.byte_order})"
