"""RPC over PBIO: request/reply with NDR-marshalled arguments.

Section 4.3 frames receiver-side conversion as "another form of the
'marshaling problem' that occurs widely in RPC implementations", and
claims DCG conversions match the efficiency of "the compile-time
generated stub routines used by the fastest systems" (the USC reference)
while staying flexible.  This module makes that comparison concrete: the
same interface/servant shape as :mod:`repro.wire.iiop.orb`, but the
arguments travel as PBIO messages — sender-native bytes plus one-time
meta — so:

* a client and server on the same architecture exchange calls with zero
  marshalling on either side;
* heterogeneous pairs pay one DCG conversion per direction;
* interfaces can *evolve*: a client sending requests with extra fields
  interoperates with an older server (name matching), which no IDL-stub
  system permits.

Call envelope (request and reply both): a PBIO data message whose record
is the operation's argument/result record, preceded by a tiny call
header message routing (request id, object key, operation).

Failure taxonomy (docs/robustness.md §5) — three disjoint families so
retry logic can be mechanical:

* :class:`~repro.net.transport.TransportError` — the *link* failed.
  Retryable: with a :class:`~repro.net.faults.RetryPolicy` the client
  retransmits under the **same request id**, and the server's dedup
  window guarantees the servant still executes at most once.
* :class:`RpcFault` (under :class:`RpcError`) — the *application*
  faulted (no such object/operation, servant raised).  Never retried.
* :class:`~repro.core.errors.PbioError` — the *protocol* broke
  (malformed header, undecodable body).  Fatal, never retried.
"""

from __future__ import annotations

import struct
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.abi import MachineDescription, RecordSchema
from repro.net.transport import (
    Transport,
    TransportError,
    TransportTimeout,
    transport_token,
)

from . import encoder as enc
from .context import FormatHandle, IOContext
from .errors import MessageError, PbioError
from .negotiation import Announcer, InboundNegotiator, link_key
from .runtime import ConverterCache, Metrics
from .safety import DEFAULT_LIMITS, DecodeLimits

if TYPE_CHECKING:  # import would cycle through repro.net at runtime
    from repro.net.faults import RetryPolicy

_CALL = struct.Struct(">IB")  # request id, flags (bit0: is-reply, bit1: fault)
_FAULT_FLAG = 0x02
_REPLY_FLAG = 0x01


class RpcError(RuntimeError):
    """Base of RPC-layer failures (deliberately *not* a PbioError:
    application faults and deadline misses are not protocol damage)."""


class RpcFault(RpcError):
    """Raised client-side when the server reports an application fault."""


class RpcTimeout(RpcError):
    """A call's deadline budget expired before a reply arrived."""


@dataclass(frozen=True)
class RpcOperation:
    name: str
    request_schema: RecordSchema
    reply_schema: RecordSchema


class RpcInterface:
    """A named set of operations (PBIO's answer to an IDL interface)."""

    def __init__(self, name: str, operations: list[RpcOperation]):
        self.name = name
        self.operations = {op.name: op for op in operations}
        if len(self.operations) != len(operations):
            raise PbioError(f"interface {name}: duplicate operation names")

    def __getitem__(self, name: str) -> RpcOperation:
        try:
            return self.operations[name]
        except KeyError:
            raise PbioError(f"interface {self.name} has no operation {name!r}") from None


def _call_header(request_id: int, *, reply: bool, fault: bool, operation: str, key: bytes) -> bytes:
    flags = (_REPLY_FLAG if reply else 0) | (_FAULT_FLAG if fault else 0)
    op_b = operation.encode("utf-8")
    return (
        _CALL.pack(request_id, flags)
        + struct.pack(">H", len(op_b))
        + op_b
        + struct.pack(">H", len(key))
        + key
    )


def _parse_call_header(data: bytes) -> tuple[int, bool, bool, str, bytes]:
    try:
        request_id, flags = _CALL.unpack_from(data, 0)
        pos = _CALL.size
        (op_len,) = struct.unpack_from(">H", data, pos)
        pos += 2
        if pos + op_len > len(data):
            raise MessageError(
                f"call header truncated: operation name needs {op_len} bytes, "
                f"have {len(data) - pos}"
            )
        operation = bytes(data[pos : pos + op_len]).decode("utf-8")
        pos += op_len
        (key_len,) = struct.unpack_from(">H", data, pos)
        pos += 2
        if pos + key_len > len(data):
            raise MessageError(
                f"call header truncated: object key needs {key_len} bytes, "
                f"have {len(data) - pos}"
            )
        key = bytes(data[pos : pos + key_len])
        if pos + key_len != len(data):
            raise MessageError(
                f"{len(data) - pos - key_len} trailing byte(s) after call header"
            )
    except (struct.error, UnicodeDecodeError, IndexError) as exc:
        # A frame that is not a call header at all (e.g. a record body
        # surfacing where a header belongs after mid-reply frame loss):
        # protocol damage, reported as such rather than a struct leak.
        raise MessageError(f"malformed call header: {exc}") from exc
    return request_id, bool(flags & _REPLY_FLAG), bool(flags & _FAULT_FLAG), operation, key


class RpcClient:
    """Client stubs: one PBIO context, per-operation format handles."""

    def __init__(
        self,
        machine: MachineDescription,
        interface: RpcInterface,
        *,
        cache: ConverterCache | None = None,
        limits: DecodeLimits | None = DEFAULT_LIMITS,
        format_service=None,
    ):
        self.ctx = IOContext(
            machine, cache=cache, limits=limits, format_service=format_service
        )
        self.interface = interface
        self.metrics = Metrics()
        self._handles: dict[str, FormatHandle] = {}
        self._announcer = Announcer(self.ctx)
        self._negotiators: dict[tuple[int, int], InboundNegotiator] = {}
        self._neg_memo: tuple | None = None
        self._next_id = 1

    def _handle_for(self, schema: RecordSchema) -> FormatHandle:
        handle = self._handles.get(schema.name)
        if handle is None:
            handle = self.ctx.register_format(schema)
            self._handles[schema.name] = handle
            # Expect replies of the operation's reply type.
        return handle

    def invoke(
        self,
        transport: Transport,
        object_key: bytes,
        operation: str,
        request: dict,
        *,
        retry: "RetryPolicy | None" = None,
        deadline_s: float | None = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> dict:
        """Perform one call, optionally with a deadline and retransmission.

        ``deadline_s`` bounds the whole call (all attempts and backoff);
        on expiry :class:`RpcTimeout` is raised.  ``retry`` (a
        :class:`~repro.net.faults.RetryPolicy`) retransmits after a
        :class:`TransportError` under the *same* request id — safe for
        any servant because the server's dedup window replays the cached
        reply instead of re-executing.  Application faults and protocol
        errors are never retried.
        """
        op = self.interface[operation]
        handle = self._handle_for(op.request_schema)
        self.ctx.expect(op.reply_schema)
        request_id = self._next_id
        self._next_id += 1
        self.metrics.inc("calls")
        start = clock()

        def attempt() -> dict:
            if deadline_s is not None:
                elapsed = clock() - start
                if elapsed >= deadline_s:
                    raise RpcTimeout(
                        f"call {operation!r} (request {request_id}) exceeded "
                        f"deadline of {deadline_s}s"
                    )
                transport.set_timeout(deadline_s - elapsed)
            self._transmit(transport, handle, request_id, operation, object_key, request)
            return self._await_reply(transport, request_id)

        if retry is None:
            try:
                return attempt()
            except TransportError:
                self.metrics.inc("transport_errors")
                raise

        def note_retry(attempt_no: int, exc: BaseException, backoff: float) -> None:
            self.metrics.inc("transport_errors")
            self.metrics.inc("retries")

        return retry.run(
            attempt,
            retry_on=(TransportError,),
            on_retry=note_retry,
            sleep=sleep,
            clock=clock,
            deadline_s=deadline_s if deadline_s is not None else retry.deadline_s,
        )

    # -- wire helpers --------------------------------------------------------

    def _neg(self, transport: Transport) -> InboundNegotiator:
        """The inbound negotiator for the current incarnation of a link."""
        gen = getattr(transport, "generation", 0)
        memo = self._neg_memo
        if memo is not None and memo[0] is transport and memo[1] == gen:
            return memo[2]
        key = link_key(transport)
        neg = self._negotiators.get(key)
        if neg is None:
            neg = InboundNegotiator(self.ctx, transport.send)
            self._negotiators[key] = neg
            while len(self._negotiators) > 16:  # dead incarnations, oldest first
                del self._negotiators[next(iter(self._negotiators))]
        self._neg_memo = (transport, gen, neg)
        return neg

    def _recv_frame(self, transport: Transport) -> bytes:
        """The next caller-visible frame: announcements (inline and
        token), meta requests and held messages are handled in the
        negotiator; what comes out is a call header, fault text, or a
        decodable data message."""
        neg = self._neg(transport)
        frame = neg.next_ready()
        while frame is None:
            frame = neg.filter(transport.recv())
        return frame

    def _transmit(
        self,
        transport: Transport,
        handle: FormatHandle,
        request_id: int,
        operation: str,
        object_key: bytes,
        request: dict,
    ) -> None:
        self._announcer.ensure_announced(transport, handle)
        transport.send(
            _call_header(request_id, reply=False, fault=False, operation=operation, key=object_key)
        )
        transport.send(self.ctx.encode(handle, request))

    def _await_reply(self, transport: Transport, request_id: int) -> dict:
        neg = self._neg(transport)
        recv, filt, ready = transport.recv, neg.filter, neg.next_ready
        while True:
            header = ready()
            while header is None:
                header = filt(recv())
            reply_id, is_reply, is_fault, _op, _key = _parse_call_header(header)
            if not is_reply:
                raise PbioError("protocol error: expected a reply header")
            if reply_id != request_id:
                if reply_id < request_id:
                    # A duplicated/retransmitted reply to an *earlier*,
                    # already-completed call: drain its body and move on.
                    self.metrics.inc("stale_replies")
                    self._absorb_reply_body(transport, fault=is_fault)
                    continue
                raise PbioError(f"reply id {reply_id} for unknown request")
            body = ready()
            while body is None:
                body = filt(recv())
            if is_fault:
                raise RpcFault(bytes(body).decode("utf-8", "replace"))
            return self.ctx.receive(body)

    def _absorb_reply_body(self, transport: Transport, *, fault: bool) -> None:
        body = self._recv_frame(transport)
        if fault:
            return  # fault bodies are raw text, one frame
        if enc.is_pbio_message(body):
            self.ctx.receive(body)


class RpcServer:
    """Server side: servant registry + request dispatch over a transport.

    ``dedup_window`` caches the reply frames of the last N request ids
    *per transport*, so a retransmitted request (client-side retry after
    a lost reply) is answered from the cache — the servant observes each
    request id exactly once ("at-most-once execution, at-least-once
    delivery").
    """

    def __init__(
        self,
        machine: MachineDescription,
        interface: RpcInterface,
        *,
        cache: ConverterCache | None = None,
        dedup_window: int = 64,
        limits: DecodeLimits | None = DEFAULT_LIMITS,
        format_service=None,
    ):
        if dedup_window < 0:
            raise ValueError("dedup_window must be >= 0")
        self.ctx = IOContext(
            machine, cache=cache, limits=limits, format_service=format_service
        )
        self.interface = interface
        self.metrics = Metrics()
        self._servants: dict[bytes, dict[str, Callable[[dict], dict]]] = {}
        self._handles: dict[str, FormatHandle] = {}
        self._announcer = Announcer(self.ctx)
        self._negotiators: dict[tuple[int, int], InboundNegotiator] = {}
        self._neg_memo: tuple | None = None
        self._dedup_window = dedup_window
        self._replies: dict[int, OrderedDict[int, list[bytes]]] = {}
        self._stop = threading.Event()
        for op in interface.operations.values():
            self.ctx.expect(op.request_schema)

    # -- shutdown ------------------------------------------------------------

    def stop(self) -> None:
        """Ask every :meth:`serve` loop (and the async handler adapters)
        to exit after the in-flight call instead of serving forever.
        Thread-safe; sticky until :meth:`restart`."""
        self._stop.set()

    def restart(self) -> None:
        """Clear a previous :meth:`stop` so new serve loops run again."""
        self._stop.clear()

    @property
    def stopped(self) -> bool:
        return self._stop.is_set()

    def drain_and_stop(self, deadline_s: float = 5.0) -> None:
        """:meth:`stop`, preceded by a goodbye ping on every known link.

        The goodbye (``MSG_PING`` with nonce 0) tells clients the server
        is draining so they re-dial a replica immediately instead of
        timing out a dead call.  Synchronous transports have no queued
        sends to flush, so ``deadline_s`` exists for signature parity
        with the async servers (where
        :meth:`repro.net.aio.AsyncServer.drain_and_stop` owns the queue
        flush); links that fail the goodbye are skipped — they were
        already gone.
        """
        for neg in list(self._negotiators.values()):
            try:
                neg._send(enc.encode_ping(enc.GOODBYE_NONCE))
            except TransportError:
                continue
            self.metrics.inc("rpc.goodbyes_sent")
        self.stop()
        self.metrics.inc("rpc.drained")

    def register(self, object_key: bytes, operations: dict[str, Callable[[dict], dict]]) -> None:
        for name in operations:
            self.interface[name]  # validate
        self._servants[object_key] = dict(operations)

    def _neg(self, transport: Transport) -> InboundNegotiator:
        gen = getattr(transport, "generation", 0)
        memo = self._neg_memo
        if memo is not None and memo[0] is transport and memo[1] == gen:
            return memo[2]
        key = link_key(transport)
        neg = self._negotiators.get(key)
        if neg is None:
            neg = InboundNegotiator(self.ctx, transport.send)
            self._negotiators[key] = neg
            while len(self._negotiators) > 16:
                del self._negotiators[next(iter(self._negotiators))]
        self._neg_memo = (transport, gen, neg)
        return neg

    def serve_one(self, transport: Transport) -> None:
        """Handle exactly one call (absorbing any format announcements).

        Announcements — inline or token — and the token-recovery
        back-channel are handled by the link's
        :class:`~repro.core.negotiation.InboundNegotiator`: a request
        whose format arrives as an unresolvable token makes the server
        ask the client for inline meta and hold the request body until
        it lands, so no call is lost to a format-server outage.
        """
        gen = self.serve_steps(transport)
        try:
            next(gen)
            while True:
                gen.send(transport.recv())
        except StopIteration:
            return

    def serve(self, transport: Transport, *, poll_s: float | None = None) -> None:
        """Serve calls on one connection until the peer goes away or
        :meth:`stop` is called.

        Without ``poll_s`` a blocked ``recv`` only notices a stop once
        the next frame (or a transport error) arrives; with ``poll_s``
        the transport timeout is set so the loop re-checks the stop flag
        at least that often — prompt shutdown for threaded servers.
        (The poll assumes quiescent gaps *between* calls, which
        request/reply traffic guarantees.)  Protocol damage
        (:class:`~repro.core.errors.PbioError`) propagates to the
        caller; a broken link returns quietly.
        """
        if poll_s is not None:
            transport.set_timeout(poll_s)
        while not self._stop.is_set():
            try:
                self.serve_one(transport)
            except TransportTimeout:
                continue  # poll tick: re-check the stop flag
            except TransportError:  # includes PeerClosedError
                return

    def serve_steps(self, transport: Transport):
        """The sans-io core of :meth:`serve_one`: a generator that yields
        each time it needs another inbound frame and is resumed with it
        (``gen.send(frame)``).

        Replies go out through ``transport.send`` directly — on an
        :class:`~repro.net.aio.AsyncSocketTransport` that is a
        synchronous bounded-queue enqueue, which is why one protocol
        implementation serves both the blocking driver (:meth:`serve_one`)
        and the async driver (:func:`repro.net.aio.serve_rpc_call`).
        """
        neg = self._neg(transport)
        filt = neg.filter
        message = neg.next_ready()
        while message is None:
            message = filt((yield))
        request_id, is_reply, _fault, operation, key = _parse_call_header(message)
        if is_reply:
            raise PbioError("protocol error: server received a reply header")
        body = neg.next_ready()
        while body is None:
            body = filt((yield))
        if not enc.is_pbio_message(body):
            raise PbioError("protocol error: expected a PBIO data message")
        request = self.ctx.receive(body)
        token = transport_token(transport)
        window = self._replies.setdefault(token, OrderedDict())
        cached = window.get(request_id)
        if cached is not None:
            # Retransmission of a request already executed: replay the
            # recorded reply frames verbatim, don't run the servant again.
            self.metrics.inc("dedup_hits")
            for frame_bytes in cached:
                transport.send(frame_bytes)
            return
        frames: list[bytes] = []

        def send(data: bytes) -> None:
            frames.append(bytes(data))
            transport.send(data)

        try:
            servant = self._servants.get(bytes(key))
            if servant is None:
                raise RpcFault(f"no object {key!r}")
            method = servant.get(operation)
            if method is None:
                raise RpcFault(f"no operation {operation!r} on {key!r}")
            try:
                result = method(request)
            except RpcFault:
                raise
            except Exception as exc:  # a broken servant must not kill serving
                self.metrics.inc("servant_errors")
                raise RpcFault(f"internal error in {operation!r}: {exc!r}") from exc
            op = self.interface[operation]
            handle = self._handles.get(op.reply_schema.name)
            if handle is None:
                handle = self.ctx.register_format(op.reply_schema)
                self._handles[op.reply_schema.name] = handle
            send(_call_header(request_id, reply=True, fault=False, operation=operation, key=b""))
            self._announcer.ensure_announced(transport, handle, send=send)
            send(self.ctx.encode(handle, result))
            self.metrics.inc("requests_served")
        except RpcFault as exc:
            frames.clear()  # a half-sent success reply is not replayable
            send(_call_header(request_id, reply=True, fault=True, operation=operation, key=b""))
            send(str(exc).encode("utf-8"))
            self.metrics.inc("faults")
        if self._dedup_window:
            window[request_id] = frames
            while len(window) > self._dedup_window:
                window.popitem(last=False)
