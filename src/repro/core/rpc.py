"""RPC over PBIO: request/reply with NDR-marshalled arguments.

Section 4.3 frames receiver-side conversion as "another form of the
'marshaling problem' that occurs widely in RPC implementations", and
claims DCG conversions match the efficiency of "the compile-time
generated stub routines used by the fastest systems" (the USC reference)
while staying flexible.  This module makes that comparison concrete: the
same interface/servant shape as :mod:`repro.wire.iiop.orb`, but the
arguments travel as PBIO messages — sender-native bytes plus one-time
meta — so:

* a client and server on the same architecture exchange calls with zero
  marshalling on either side;
* heterogeneous pairs pay one DCG conversion per direction;
* interfaces can *evolve*: a client sending requests with extra fields
  interoperates with an older server (name matching), which no IDL-stub
  system permits.

Call envelope (request and reply both): a PBIO data message whose record
is the operation's argument/result record, preceded by a tiny call
header message routing (request id, object key, operation).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable

from repro.abi import MachineDescription, RecordSchema
from repro.net.transport import Transport

from . import encoder as enc
from .context import FormatHandle, IOContext
from .errors import PbioError
from .runtime import ConverterCache

_CALL = struct.Struct(">IB")  # request id, flags (bit0: is-reply, bit1: fault)
_FAULT_FLAG = 0x02
_REPLY_FLAG = 0x01


class RpcFault(PbioError):
    """Raised client-side when the server reports an application fault."""


@dataclass(frozen=True)
class RpcOperation:
    name: str
    request_schema: RecordSchema
    reply_schema: RecordSchema


class RpcInterface:
    """A named set of operations (PBIO's answer to an IDL interface)."""

    def __init__(self, name: str, operations: list[RpcOperation]):
        self.name = name
        self.operations = {op.name: op for op in operations}
        if len(self.operations) != len(operations):
            raise PbioError(f"interface {name}: duplicate operation names")

    def __getitem__(self, name: str) -> RpcOperation:
        try:
            return self.operations[name]
        except KeyError:
            raise PbioError(f"interface {self.name} has no operation {name!r}") from None


def _call_header(request_id: int, *, reply: bool, fault: bool, operation: str, key: bytes) -> bytes:
    flags = (_REPLY_FLAG if reply else 0) | (_FAULT_FLAG if fault else 0)
    op_b = operation.encode("utf-8")
    return (
        _CALL.pack(request_id, flags)
        + struct.pack(">H", len(op_b))
        + op_b
        + struct.pack(">H", len(key))
        + key
    )


def _parse_call_header(data: bytes) -> tuple[int, bool, bool, str, bytes]:
    request_id, flags = _CALL.unpack_from(data, 0)
    pos = _CALL.size
    (op_len,) = struct.unpack_from(">H", data, pos)
    pos += 2
    operation = data[pos : pos + op_len].decode("utf-8")
    pos += op_len
    (key_len,) = struct.unpack_from(">H", data, pos)
    pos += 2
    key = data[pos : pos + key_len]
    return request_id, bool(flags & _REPLY_FLAG), bool(flags & _FAULT_FLAG), operation, key


class RpcClient:
    """Client stubs: one PBIO context, per-operation format handles."""

    def __init__(
        self,
        machine: MachineDescription,
        interface: RpcInterface,
        *,
        cache: ConverterCache | None = None,
    ):
        self.ctx = IOContext(machine, cache=cache)
        self.interface = interface
        self._handles: dict[str, FormatHandle] = {}
        self._announced: set[tuple[int, int]] = set()
        self._next_id = 1

    def _handle_for(self, schema: RecordSchema) -> FormatHandle:
        handle = self._handles.get(schema.name)
        if handle is None:
            handle = self.ctx.register_format(schema)
            self._handles[schema.name] = handle
            # Expect replies of the operation's reply type.
        return handle

    def invoke(self, transport: Transport, object_key: bytes, operation: str, request: dict) -> dict:
        op = self.interface[operation]
        handle = self._handle_for(op.request_schema)
        self.ctx.expect(op.reply_schema)
        request_id = self._next_id
        self._next_id += 1
        announce_key = (id(transport), handle.format_id)
        if announce_key not in self._announced:
            transport.send(self.ctx.announce(handle))
            self._announced.add(announce_key)
        transport.send(_call_header(request_id, reply=False, fault=False, operation=operation, key=object_key))
        transport.send(self.ctx.encode(handle, request))
        # -- reply ----------------------------------------------------------
        while True:
            header = transport.recv()
            reply_id, is_reply, is_fault, _op, _key = _parse_call_header(header)
            if not is_reply:
                raise PbioError("protocol error: expected a reply header")
            if reply_id != request_id:
                raise PbioError(f"reply id {reply_id} for unknown request")
            body = transport.recv()
            if is_fault:
                raise RpcFault(bytes(body).decode("utf-8", "replace"))
            result = self.ctx.receive(body)
            if result is None:  # absorbed a format announcement; body follows
                body = transport.recv()
                result = self.ctx.receive(body)
            return result


class RpcServer:
    """Server side: servant registry + request dispatch over a transport."""

    def __init__(
        self,
        machine: MachineDescription,
        interface: RpcInterface,
        *,
        cache: ConverterCache | None = None,
    ):
        self.ctx = IOContext(machine, cache=cache)
        self.interface = interface
        self._servants: dict[bytes, dict[str, Callable[[dict], dict]]] = {}
        self._handles: dict[str, FormatHandle] = {}
        self._announced: set[tuple[int, int]] = set()
        for op in interface.operations.values():
            self.ctx.expect(op.request_schema)

    def register(self, object_key: bytes, operations: dict[str, Callable[[dict], dict]]) -> None:
        for name in operations:
            self.interface[name]  # validate
        self._servants[object_key] = dict(operations)

    def serve_one(self, transport: Transport) -> None:
        """Handle exactly one call (absorbing any format announcements)."""
        while True:
            message = transport.recv()
            # Format announcements are PBIO messages; call headers are not.
            if enc.is_pbio_message(message):
                self.ctx.receive(message)
                continue
            break
        request_id, is_reply, _fault, operation, key = _parse_call_header(message)
        if is_reply:
            raise PbioError("protocol error: server received a reply header")
        body = transport.recv()
        while True:
            if enc.is_pbio_message(body):
                decoded = self.ctx.receive(body)
                if decoded is None:  # it was an announcement
                    body = transport.recv()
                    continue
                request = decoded
                break
            raise PbioError("protocol error: expected a PBIO data message")
        try:
            servant = self._servants.get(bytes(key))
            if servant is None:
                raise RpcFault(f"no object {key!r}")
            method = servant.get(operation)
            if method is None:
                raise RpcFault(f"no operation {operation!r} on {key!r}")
            result = method(request)
            op = self.interface[operation]
            handle = self._handles.get(op.reply_schema.name)
            if handle is None:
                handle = self.ctx.register_format(op.reply_schema)
                self._handles[op.reply_schema.name] = handle
            transport.send(_call_header(request_id, reply=True, fault=False, operation=operation, key=b""))
            announce_key = (id(transport), handle.format_id)
            if announce_key not in self._announced:
                transport.send(self.ctx.announce(handle))
                self._announced.add(announce_key)
            transport.send(self.ctx.encode(handle, result))
        except RpcFault as exc:
            transport.send(_call_header(request_id, reply=True, fault=True, operation=operation, key=b""))
            transport.send(str(exc).encode("utf-8"))
