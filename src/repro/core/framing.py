"""The v2 crash-safe frame discipline, factored out of :mod:`repro.core.files`.

One framing, three consumers: PBIO record files (:mod:`repro.core.files`),
the format-service on-disk cache (:mod:`repro.fmtserv.cache`) and the
durable-delivery write-ahead log (:mod:`repro.net.durable`).  A frame is::

    u32 length | payload | u32 crc32(payload) | u32 length-echo

emitted with a *single* ``write`` call, so a process killed mid-append
tears at most the frame in flight.  The CRC detects in-place corruption;
the trailing length echo is an independent second copy of the framing, so
a scanner can distinguish "payload damaged" (echo agrees, CRC fails)
from "framing untrustworthy" (echo disagrees too) and resync safely.

v1 (``u32 length | payload``) remains readable for the seed file format.
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Callable, Iterator
from zlib import crc32

#: Current frame discipline version (the crash-safe one).
FRAME_VERSION = 2

MSG_LEN = struct.Struct(">I")
V2_TRAILER = struct.Struct(">II")  # crc32(payload), length echo


def pack_frame(payload: bytes, *, version: int = FRAME_VERSION) -> bytes:
    """One frame around ``payload`` in the given framing version.

    v2 is the crash-safe framing (``u32 len | payload | u32 crc32 |
    u32 len-echo``).  Emit the result with a single ``write`` call to
    keep the torn-tail guarantee.
    """
    payload = bytes(payload)
    frame = MSG_LEN.pack(len(payload)) + payload
    if version >= 2:
        frame += V2_TRAILER.pack(crc32(payload), len(payload))
    return frame


def frame_size(payload_len: int, *, version: int = FRAME_VERSION) -> int:
    """On-disk bytes a payload of ``payload_len`` costs once framed."""
    size = MSG_LEN.size + payload_len
    if version >= 2:
        size += V2_TRAILER.size
    return size


def iter_frames(
    stream: BinaryIO,
    *,
    version: int = FRAME_VERSION,
    max_size: int | None = None,
    on_damage: Callable[[str], None] | None = None,
) -> Iterator[bytes]:
    """Crash-safe scan of :func:`pack_frame` output: yield intact payloads.

    Damage handling is the v2 ``recover="skip"`` ladder: CRC-mismatched
    frames are skipped while the length echo keeps alignment
    trustworthy; a torn tail (or an untrustworthy length) ends the scan
    cleanly.  ``on_damage`` (if given) is called with ``"corrupt"`` or
    ``"torn"`` per damaged frame — callers count, this layer scans.
    """

    def damaged(what: str) -> None:
        if on_damage is not None:
            on_damage(what)

    while True:
        raw_len = stream.read(MSG_LEN.size)
        if not raw_len:
            return  # clean EOF at a frame boundary
        if len(raw_len) != MSG_LEN.size:
            damaged("torn")
            return
        (n,) = MSG_LEN.unpack(raw_len)
        if max_size is not None and n > max_size:
            damaged("corrupt")  # hostile or corrupted prefix: stop, don't allocate
            return
        payload = stream.read(n)
        if len(payload) != n:
            damaged("torn")
            return
        if version < 2:
            yield payload
            continue
        trailer = stream.read(V2_TRAILER.size)
        if len(trailer) != V2_TRAILER.size:
            damaged("torn")
            return
        crc, echo = V2_TRAILER.unpack(trailer)
        if crc32(payload) == crc:
            yield payload
            continue
        damaged("corrupt")
        if echo != n:
            return  # length prefix itself suspect: alignment untrustworthy


def intact_prefix_end(data: bytes, start: int = 0, *, version: int = FRAME_VERSION) -> int:
    """Offset of the first byte past the last intact frame from ``start``.

    The truncation point a crash-safe opener uses to drop a torn tail in
    place (``stream.truncate(intact_prefix_end(...))``) without losing
    any complete, CRC-valid frame.  Scanning stops at the first frame
    that is torn, corrupt, or whose framing is untrustworthy.
    """
    pos = start
    while pos < len(data):
        if pos + MSG_LEN.size > len(data):
            break
        (n,) = MSG_LEN.unpack_from(data, pos)
        body_start = pos + MSG_LEN.size
        end = body_start + n
        if version >= 2:
            end += V2_TRAILER.size
        if end > len(data):
            break
        if version >= 2:
            crc, echo = V2_TRAILER.unpack_from(data, body_start + n)
            if echo != n or crc32(data[body_start : body_start + n]) != crc:
                break
        pos = end
    return pos
