"""PBIO files: self-describing binary record files.

PBIO began life as *Portable Binary I/O* — the same NDR idea applied to
files: records are written in the writer's natural representation, and
the file carries the format meta-information so any reader on any
machine can decode it later.  This module provides that capability:

* :class:`PbioFileWriter` — append records (native bytes or value dicts)
  of any registered format; each format's meta-block is emitted before
  its first record.
* :class:`PbioFileReader` — iterate records, decoding to the *reader's*
  machine; or scan lazily (``iter_raw``) and decode selectively.

The file is literally a stream of PBIO messages (format messages and
data messages) prefixed by a small file header — so the wire and file
representations are one format, as in the original system.
"""

from __future__ import annotations

import io
import struct
from typing import Any, BinaryIO, Iterator

from repro.abi import RecordSchema

from . import encoder as enc
from .context import FormatHandle, IOContext
from .errors import MessageError

FILE_MAGIC = b"PBIOFILE"
FILE_VERSION = 1
_FILE_HEADER = struct.Struct(">8sHxx")  # magic, version, pad
_MSG_LEN = struct.Struct(">I")


class PbioFileWriter:
    """Writes a self-describing record file on behalf of one IOContext."""

    def __init__(self, ctx: IOContext, stream: BinaryIO):
        self.ctx = ctx
        self._stream = stream
        self._announced: set[int] = set()
        self._records_written = 0
        stream.write(_FILE_HEADER.pack(FILE_MAGIC, FILE_VERSION))

    @classmethod
    def open(cls, ctx: IOContext, path: str) -> "PbioFileWriter":
        return cls(ctx, open(path, "wb"))

    def write_native(self, handle: FormatHandle, native) -> None:
        """Append one record already in native binary form."""
        if handle.format_id not in self._announced:
            self._emit(self.ctx.announce(handle))
            self._announced.add(handle.format_id)
        self._emit(self.ctx.encode_native(handle, native))
        self._records_written += 1

    def write(self, handle: FormatHandle, record: dict[str, Any]) -> None:
        """Append one record given as a value dict."""
        self.write_native(handle, handle.codec.encode(record))

    def _emit(self, message: bytes) -> None:
        self._stream.write(_MSG_LEN.pack(len(message)))
        self._stream.write(message)

    @property
    def records_written(self) -> int:
        return self._records_written

    def close(self) -> None:
        self._stream.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


class PbioFileReader:
    """Reads a PBIO file, decoding records to the reader's machine.

    The reader context must ``expect()`` the record formats it wants
    decoded; unknown record types can still be enumerated via
    :meth:`iter_raw` and inspected with the reflection API.
    """

    def __init__(self, ctx: IOContext, stream: BinaryIO):
        self.ctx = ctx
        self._stream = stream
        header = stream.read(_FILE_HEADER.size)
        if len(header) != _FILE_HEADER.size:
            raise MessageError("not a PBIO file: truncated header")
        magic, version = _FILE_HEADER.unpack(header)
        if magic != FILE_MAGIC:
            raise MessageError(f"not a PBIO file: bad magic {magic!r}")
        if version != FILE_VERSION:
            raise MessageError(f"unsupported PBIO file version {version}")

    @classmethod
    def open(cls, ctx: IOContext, path: str) -> "PbioFileReader":
        stream = open(path, "rb")
        try:
            return cls(ctx, stream)
        except Exception:
            stream.close()
            raise

    def iter_raw(self) -> Iterator[bytes]:
        """Yield every *data* message, absorbing format messages."""
        while True:
            raw_len = self._stream.read(_MSG_LEN.size)
            if not raw_len:
                return
            if len(raw_len) != _MSG_LEN.size:
                raise MessageError("truncated PBIO file (length prefix)")
            (n,) = _MSG_LEN.unpack(raw_len)
            message = self._stream.read(n)
            if len(message) != n:
                raise MessageError("truncated PBIO file (message body)")
            if enc.message_kind(message) == enc.MSG_FORMAT:
                self.ctx.receive(message)
                continue
            yield message

    def __iter__(self) -> Iterator[dict[str, Any]]:
        """Yield every record decoded to a value dict."""
        for message in self.iter_raw():
            yield self.ctx.decode(message)

    def read_all(self) -> list[dict[str, Any]]:
        return list(self)

    def close(self) -> None:
        self._stream.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


def write_records(
    ctx: IOContext, path: str, schema: RecordSchema, records: list[dict[str, Any]]
) -> None:
    """Convenience: write one schema's records to ``path``."""
    with PbioFileWriter.open(ctx, path) as writer:
        handle = ctx.register_format(schema)
        for record in records:
            writer.write(handle, record)


def read_records(ctx: IOContext, path: str, schema: RecordSchema) -> list[dict[str, Any]]:
    """Convenience: read all records of ``schema`` from ``path``."""
    ctx.expect(schema)
    with PbioFileReader.open(ctx, path) as reader:
        return reader.read_all()


def file_to_buffer(ctx: IOContext, schema: RecordSchema, records: list[dict[str, Any]]) -> bytes:
    """Build an in-memory PBIO file (testing / transmission as a blob)."""
    buf = io.BytesIO()
    writer = PbioFileWriter(ctx, buf)
    handle = ctx.register_format(schema)
    for record in records:
        writer.write(handle, record)
    return buf.getvalue()
