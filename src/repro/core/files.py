"""PBIO files: self-describing binary record files.

PBIO began life as *Portable Binary I/O* — the same NDR idea applied to
files: records are written in the writer's natural representation, and
the file carries the format meta-information so any reader on any
machine can decode it later.  This module provides that capability:

* :class:`PbioFileWriter` — append records (native bytes or value dicts)
  of any registered format; each format's meta-block is emitted before
  its first record.
* :class:`PbioFileReader` — iterate records, decoding to the *reader's*
  machine; or scan lazily (``iter_raw``) and decode selectively.

The file is literally a stream of PBIO messages (format messages and
data messages) prefixed by a small file header — so the wire and file
representations are one format, as in the original system.

File versions
-------------

**v1** frames each message as ``u32 length | payload`` — the seed
format, still read (and writable via ``version=1``) for compatibility.

**v2** (the default) appends a crash-safety trailer to every frame::

    u32 length | payload | u32 crc32(payload) | u32 length-echo

The CRC detects in-place corruption (bit rot, torn writes that landed
mid-record); the trailing length echo gives a second, independent copy
of the framing so a scanner (:mod:`repro.tools.fsck_tool`) can resync
after damage by walking backwards from a candidate boundary.  A process
killed mid-append leaves at most one incomplete frame at the tail, which
readers detect as *torn* rather than misparsing it as data.

Readers take a ``recover`` policy:

* ``"raise"`` (default) — any damage raises :class:`MessageError`;
* ``"skip"``  — corrupt records are skipped (framing permitting) and a
  torn tail ends iteration cleanly: everything intact is recovered;
* ``"stop"``  — iteration ends cleanly at the first damaged frame.

Damage is counted on the reader context's unified metrics:
``file.corrupt_records`` (CRC mismatches), ``file.torn_tails``
(incomplete trailing frames) and ``file.recovered_records`` (records
successfully delivered *after* damage was first observed — i.e. records
a v1 reader would have lost).
"""

from __future__ import annotations

import io
import mmap
import os
import struct
import zlib
from typing import Any, BinaryIO, Iterator

from repro.abi import RecordSchema

from . import encoder as enc
from .context import FormatHandle, IOContext
from .errors import MessageError, PbioError
from .runtime.pool import Lease

# The frame discipline itself lives in repro.core.framing (shared with
# the fmtserv cache file and the durable-delivery WAL); the historical
# names are re-exported here because tooling imports them from this
# module.
from .framing import MSG_LEN as _MSG_LEN  # noqa: F401  (re-export)
from .framing import V2_TRAILER as _V2_TRAILER  # noqa: F401  (re-export)
from .framing import iter_frames, pack_frame  # noqa: F401  (re-export)

FILE_MAGIC = b"PBIOFILE"
FILE_VERSION = 2
_FILE_HEADER = struct.Struct(">8sHxx")  # magic, version, pad

#: Reader damage policies (see module docstring).
RECOVER_POLICIES = ("raise", "skip", "stop")


class PbioFileWriter:
    """Writes a self-describing record file on behalf of one IOContext.

    ``version`` selects the frame format: 2 (default) adds the per-record
    CRC trailer, 1 reproduces the legacy framing byte for byte.  The
    writer is append-only by construction — it never seeks backwards, so
    a crash can damage at most the frame being written.
    """

    def __init__(
        self,
        ctx: IOContext,
        stream: BinaryIO,
        *,
        version: int = FILE_VERSION,
        _header_written: bool = False,
    ):
        if version not in (1, 2):
            raise ValueError(f"unsupported PBIO file version {version}")
        self.ctx = ctx
        self.version = version
        self._stream = stream
        self._announced: set[int] = set()
        self._records_written = 0
        if not _header_written:
            stream.write(_FILE_HEADER.pack(FILE_MAGIC, version))

    @classmethod
    def open(cls, ctx: IOContext, path: str, *, version: int = FILE_VERSION) -> "PbioFileWriter":
        return cls(ctx, open(path, "wb"), version=version)

    @classmethod
    def append(cls, ctx: IOContext, path: str) -> "PbioFileWriter":
        """Reopen an existing file for appending (at its recorded version).

        Formats are re-announced before their first appended record —
        harmless to readers, which absorb repeated announcements.  The
        file is assumed to end at a frame boundary; run
        ``pbio-fsck --truncate`` first if a crash may have left a torn
        tail."""
        stream = open(path, "r+b")
        try:
            header = stream.read(_FILE_HEADER.size)
            if len(header) != _FILE_HEADER.size:
                raise MessageError("not a PBIO file: truncated header")
            magic, version = _FILE_HEADER.unpack(header)
            if magic != FILE_MAGIC:
                raise MessageError(f"not a PBIO file: bad magic {magic!r}")
            if version not in (1, 2):
                raise MessageError(f"unsupported PBIO file version {version}")
            stream.seek(0, io.SEEK_END)
            return cls(ctx, stream, version=version, _header_written=True)
        except Exception:
            stream.close()
            raise

    def write_native(self, handle: FormatHandle, native) -> None:
        """Append one record already in native binary form."""
        if handle.format_id not in self._announced:
            self._emit(self.ctx.announce(handle))
            self._announced.add(handle.format_id)
        self._emit(self.ctx.encode_native(handle, native))
        self._records_written += 1

    def write(self, handle: FormatHandle, record: dict[str, Any]) -> None:
        """Append one record given as a value dict."""
        self.write_native(handle, handle.codec.encode(record))

    def append_batch_native(self, handle: FormatHandle, natives) -> None:
        """Append many native-form records as one durable region.

        All frames — the announcement included, when this file has not
        seen the format yet — are joined into a *single* ``write``, then
        flushed and fsynced, so the batch costs one syscall plus one
        durability barrier instead of N of each.  A crash mid-batch
        leaves one contiguous torn region at the tail, which the v2
        framing detects frame by frame as usual.
        """
        frames: list[bytes] = []
        version = self.version
        if handle.format_id not in self._announced:
            frames.append(pack_frame(self.ctx.announce(handle), version=version))
            self._announced.add(handle.format_id)
        encode = self.ctx.encode_native
        frames.extend(
            pack_frame(encode(handle, native), version=version) for native in natives
        )
        self._stream.write(b"".join(frames))
        self._records_written += len(natives)
        self._stream.flush()
        try:
            os.fsync(self._stream.fileno())
        except (OSError, AttributeError, io.UnsupportedOperation):
            pass  # in-memory / pipe-backed streams have no durable backing

    def append_batch(self, handle: FormatHandle, records) -> None:
        """Append many value-dict records as one durable region."""
        codec = handle.codec
        self.append_batch_native(handle, [codec.encode(r) for r in records])

    def _emit(self, message: bytes) -> None:
        # One write per frame: an interrupted append tears at most the
        # frame in flight, never an already-complete predecessor.
        self._stream.write(pack_frame(message, version=self.version))

    @property
    def records_written(self) -> int:
        return self._records_written

    def flush(self) -> None:
        self._stream.flush()

    def close(self) -> None:
        self._stream.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


class _MapSource:
    """Holds one read-only mmap of a PBIO file plus its master view.

    Deliberately a separate object: the unmap callback must not close
    over the reader (a ``self``-capturing closure inside a
    :class:`~repro.core.runtime.pool.Lease` keeps the reader — and
    therefore the lease — alive through the finalizer registry, so the
    map would never unmap).
    """

    __slots__ = ("mm", "stream", "view")

    def __init__(self, mm: mmap.mmap, stream: BinaryIO):
        self.mm = mm
        self.stream = stream
        self.view: memoryview | None = memoryview(mm)


def _close_map(source: _MapSource) -> None:
    source.view = None  # release the master export first
    try:
        source.mm.close()
    except BufferError:
        # A frame view escaped without its lease (iter_raw caller kept a
        # raw memoryview).  The map stays pinned by that export and
        # unmaps when it dies — deferred, never unsafe.
        pass
    source.stream.close()


class PbioFileReader:
    """Reads a PBIO file, decoding records to the reader's machine.

    The reader context must ``expect()`` the record formats it wants
    decoded; unknown record types can still be enumerated via
    :meth:`iter_raw` and inspected with the reflection API.

    ``recover`` selects the damage policy (v2 files): ``"raise"``
    (default), ``"skip"`` or ``"stop"`` — see the module docstring.
    Frame lengths are bounded by the context's
    :class:`~repro.core.safety.DecodeLimits` before any allocation, so a
    corrupted (or hostile) length prefix cannot demand gigabytes.

    ``mapped=True`` (via :meth:`open`) memory-maps the file instead of
    streaming it: after the ``open(2)``/``mmap(2)`` pair the scan issues
    *zero read syscalls* — every frame is a :class:`memoryview` slice of
    the map, CRC-checked lazily as the scan reaches it, and
    ``read_batch(lend=True)`` decodes records as leased
    :class:`~repro.abi.views.RecordView` objects pointing straight into
    the page cache.  The map unmaps when the reader is closed *and* the
    last leased view has died, whichever comes later.
    """

    def __init__(
        self,
        ctx: IOContext,
        stream: BinaryIO,
        *,
        recover: str = "raise",
        _map: "_MapSource | None" = None,
    ):
        if recover not in RECOVER_POLICIES:
            raise ValueError(f"recover must be one of {RECOVER_POLICIES}, not {recover!r}")
        self.ctx = ctx
        self._stream = stream
        self._recover = recover
        self._damaged = False
        self._map = _map
        self._pos = 0
        self._lease: Lease | None = None
        if _map is not None:
            self._lease = Lease(lambda: _close_map(_map), metrics=ctx.metrics)
        header = self._read(_FILE_HEADER.size)
        if len(header) != _FILE_HEADER.size:
            raise MessageError("not a PBIO file: truncated header")
        magic, version = _FILE_HEADER.unpack(header)
        if magic != FILE_MAGIC:
            raise MessageError(f"not a PBIO file: bad magic {magic!r}")
        if version not in (1, 2):
            raise MessageError(f"unsupported PBIO file version {version}")
        self.version = version

    @classmethod
    def open(
        cls,
        ctx: IOContext,
        path: str,
        *,
        recover: str = "raise",
        mapped: bool = False,
    ) -> "PbioFileReader":
        stream = open(path, "rb")
        try:
            if not mapped:
                return cls(ctx, stream, recover=recover)
            try:
                mm = mmap.mmap(stream.fileno(), 0, access=mmap.ACCESS_READ)
            except ValueError:
                # Zero-length files cannot be mapped — and are not PBIO
                # files either; report them exactly like the stream path.
                raise MessageError("not a PBIO file: truncated header") from None
            try:
                return cls(ctx, stream, recover=recover, _map=_MapSource(mm, stream))
            except Exception:
                mm.close()
                raise
        except Exception:
            stream.close()
            raise

    def _read(self, n: int):
        """Next ``n`` bytes of the file: a copy from the stream, or a
        zero-copy slice of the map (possibly short at EOF, like read)."""
        if self._map is None:
            return self._stream.read(n)
        view = self._map.view
        if view is None:
            raise ValueError("I/O operation on closed PBIO reader")
        pos = self._pos
        chunk = view[pos : pos + n]
        self._pos = pos + len(chunk)
        return chunk

    # -- framing -------------------------------------------------------------

    def _torn(self, what: str) -> None:
        if self._recover == "raise":
            raise MessageError(f"truncated PBIO file ({what})")
        self._damaged = True
        self.ctx.metrics.inc("file.torn_tails")

    def _next_frame(self):
        """The next complete, CRC-valid frame payload; ``None`` at end.

        Returns ``bytes`` when streaming, a ``memoryview`` slice of the
        map when mapped.  Under ``skip``, CRC-mismatched frames are
        consumed and skipped (the length prefix keeps the scan aligned
        unless its echo disagrees, in which case alignment is
        untrustworthy and the scan stops).  Torn tails end the scan
        under ``skip``/``stop``.
        """
        limits = self.ctx.limits
        while True:
            raw_len = self._read(_MSG_LEN.size)
            if not raw_len:
                return None  # clean EOF at a frame boundary
            if len(raw_len) != _MSG_LEN.size:
                self._torn("length prefix")
                return None
            (n,) = _MSG_LEN.unpack(raw_len)
            if limits is not None and n > limits.max_message_size:
                # A frame this size is either hostile or a corrupted
                # prefix; either way the scan cannot safely continue.
                if self._recover == "raise":
                    limits.check_message_size(n)  # raises LimitError
                self._damaged = True
                self.ctx.metrics.inc("file.corrupt_records")
                return None
            message = self._read(n)
            if len(message) != n:
                self._torn("message body")
                return None
            if self.version < 2:
                return message
            trailer = self._read(_V2_TRAILER.size)
            if len(trailer) != _V2_TRAILER.size:
                self._torn("record trailer")
                return None
            crc, echo = _V2_TRAILER.unpack(trailer)
            if zlib.crc32(message) == crc:
                # An echo mismatch with a matching CRC means only the
                # redundant echo bytes were damaged: the record is fine.
                return message
            if self._recover == "raise":
                raise MessageError(
                    f"corrupt PBIO file: record CRC mismatch "
                    f"(stored {crc:#010x}, computed {zlib.crc32(message):#010x})"
                )
            self._damaged = True
            self.ctx.metrics.inc("file.corrupt_records")
            if self._recover == "stop" or echo != n:
                # echo != n: the length prefix itself is suspect, so the
                # next "boundary" would be a guess — stop, don't misparse.
                return None
            # skip: framing is still aligned; scan on to the next frame.

    def iter_raw(self) -> Iterator[bytes]:
        """Yield every *data* message, absorbing format messages.

        Mapped readers yield ``memoryview`` slices of the map; copy
        (``bytes(m)``) anything kept past the reader's lifetime.
        """
        while True:
            message = self._next_frame()
            if message is None:
                return
            try:
                kind = enc.message_kind(message)
                if kind == enc.MSG_FORMAT:
                    # The context retains format meta; never hand it a
                    # borrowed slice of the map.
                    self.ctx.receive(
                        message if type(message) is bytes else bytes(message)
                    )
                    continue
                if kind != enc.MSG_DATA:
                    # Token announcements / format requests are link-level
                    # control messages; a self-contained file must carry
                    # full meta, so their presence here is damage.
                    raise MessageError(
                        f"unexpected message type {kind} in PBIO file"
                    )
            except PbioError:
                # A CRC-valid frame that is not a well-formed PBIO
                # message (v1 corruption, or a writer bug): damage.
                if self._recover == "raise":
                    raise
                self._damaged = True
                self.ctx.metrics.inc("file.corrupt_records")
                if self._recover == "stop":
                    return
                continue
            if self._damaged:
                self.ctx.metrics.inc("file.recovered_records")
            yield message

    def __iter__(self) -> Iterator[dict[str, Any]]:
        """Yield every record decoded to a value dict."""
        for message in self.iter_raw():
            try:
                yield self.ctx.decode(message)
            except PbioError:
                if self._recover == "raise":
                    raise
                self._damaged = True
                self.ctx.metrics.inc("file.corrupt_records")
                if self._recover == "stop":
                    return

    def read_all(self) -> list[dict[str, Any]]:
        return list(self)

    def read_batch(
        self, max_records: int | None = None, *, lend: bool = False
    ) -> list:
        """Read up to ``max_records`` records through the batch pipeline.

        Frames are scanned with the usual crash-safe ladder
        (:meth:`iter_raw` absorbs announcements and applies the
        ``recover`` policy to framing damage), then all collected data
        messages decode in one :meth:`DecodePipeline.decode_batch` pass —
        consecutive same-format records share a single columnar
        conversion.  Decode failures follow ``recover`` exactly like
        ``__iter__``: ``"raise"`` propagates, ``"skip"`` drops the bad
        record (counted as ``file.corrupt_records``), ``"stop"`` truncates
        the result at the first bad record.

        ``lend=True`` returns :class:`~repro.abi.views.RecordView`
        objects instead of dicts.  On a mapped reader the zero-copy
        format (record layout already native) decodes to views *into the
        map itself* under the reader's lease — no payload bytes are
        copied anywhere between the page cache and field access.  Call
        ``view.detach()`` before storing a view past the processing
        loop.
        """
        messages: list = []
        for message in self.iter_raw():
            messages.append(message)
            if max_records is not None and len(messages) >= max_records:
                break
        if not messages:
            return []
        decode_batch = self.ctx.pipeline.decode_batch
        if self._recover == "raise":
            return decode_batch(
                messages, on_error="raise", lend=lend, lease=self._lease
            )
        results = decode_batch(
            messages, on_error="skip", lend=lend, lease=self._lease
        )
        out: list = []
        for value in results:
            if value is None:
                self._damaged = True
                self.ctx.metrics.inc("file.corrupt_records")
                if self._recover == "stop":
                    break
                continue
            out.append(value)
        return out

    def close(self) -> None:
        if self._map is not None:
            # Drop this reader's hold on the map lease; the unmap runs
            # now, or when the last leased view dies — whichever is
            # later.  The lease callback closes the stream too.
            self._lease = None
            return
        self._stream.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


def write_records(
    ctx: IOContext,
    path: str,
    schema: RecordSchema,
    records: list[dict[str, Any]],
    *,
    version: int = FILE_VERSION,
) -> None:
    """Convenience: write one schema's records to ``path``."""
    with PbioFileWriter.open(ctx, path, version=version) as writer:
        handle = ctx.register_format(schema)
        for record in records:
            writer.write(handle, record)


def read_records(
    ctx: IOContext, path: str, schema: RecordSchema, *, recover: str = "raise"
) -> list[dict[str, Any]]:
    """Convenience: read all records of ``schema`` from ``path``."""
    ctx.expect(schema)
    with PbioFileReader.open(ctx, path, recover=recover) as reader:
        return reader.read_all()


def file_to_buffer(
    ctx: IOContext,
    schema: RecordSchema,
    records: list[dict[str, Any]],
    *,
    version: int = FILE_VERSION,
) -> bytes:
    """Build an in-memory PBIO file (testing / transmission as a blob)."""
    buf = io.BytesIO()
    writer = PbioFileWriter(ctx, buf, version=version)
    handle = ctx.register_format(schema)
    for record in records:
        writer.write(handle, record)
    return buf.getvalue()
