"""PBIO exception hierarchy."""

from __future__ import annotations


class PbioError(RuntimeError):
    """Base class for all PBIO errors."""


class FormatError(PbioError):
    """Malformed or unknown format meta-information."""


class UnknownFormatError(FormatError):
    """A data message referenced a format id that was never announced."""

    def __init__(self, context_id: int, format_id: int):
        super().__init__(
            f"unknown format id {format_id} from context {context_id:#010x}; "
            f"the format meta-information message has not been received"
        )
        self.context_id = context_id
        self.format_id = format_id


class TokenResolutionError(FormatError):
    """A token-only announcement named a fingerprint the receiver cannot
    resolve (no format service attached, cold cache, format server
    unreachable).  Unlike :class:`UnknownFormatError` this is *not*
    evidence of protocol damage — duplex endpoints recover by sending a
    ``MSG_FORMAT_REQUEST`` back to the announcer."""

    def __init__(self, context_id: int, format_id: int, fingerprint: bytes):
        super().__init__(
            f"cannot resolve format {fingerprint.hex()} announced as id "
            f"{format_id} by context {context_id:#010x} (format service "
            f"miss or unreachable)"
        )
        self.context_id = context_id
        self.format_id = format_id
        self.fingerprint = fingerprint


class MessageError(PbioError):
    """Malformed wire message (bad magic, truncation, bad type)."""


class LimitError(MessageError):
    """Incoming data exceeded a :class:`~repro.core.safety.DecodeLimits`
    resource bound (message size, field count, per-peer format quota...).

    A subclass of :class:`MessageError`: to the receiver, a frame that
    demands more resources than the configured ceiling is protocol
    damage, not a reason to allocate unboundedly."""


class ConversionError(PbioError):
    """A field cannot be converted between wire and native form."""
