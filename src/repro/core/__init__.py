"""PBIO — Portable Binary I/O with Natural Data Representation.

The paper's primary contribution: record-oriented messaging that
transmits data in the sender's native format plus one-time meta-
information, matches fields by name at the receiver, and converts (only
when needed) with dynamically generated code.

Public API:

* :class:`IOContext` — register/expect formats, encode/decode messages.
* :class:`PbioConnection` — an IOContext bound to a transport.
* :class:`PbioWire` — WireSystem adapter for comparative benchmarks.
* :mod:`~repro.core.reflection` — inspect formats without decoding.
* :func:`~repro.core.versioning.check_evolution` — format change analysis.
"""

from .errors import (
    ConversionError,
    FormatError,
    LimitError,
    MessageError,
    PbioError,
    TokenResolutionError,
    UnknownFormatError,
)
from .safety import DEFAULT_LIMITS, DecodeLimits
from .fields import WireField, wire_fields_from_layout
from .formats import IOFormat
from .registry import FormatRegistry
from .matching import FieldMatch, MatchResult, match_formats
from .conversion import (
    ConversionPlan,
    ConvOp,
    InterpretedConverter,
    OpKind,
    build_plan,
    generate_converter,
)
from .runtime import (
    BufferPool,
    ContextStats,
    ConverterCache,
    DecodePipeline,
    Metrics,
    reset_shared_cache,
    shared_cache,
)
from .context import FormatHandle, IOContext
from .connection import PbioConnection
from .negotiation import Announcer, InboundNegotiator, link_key
from .pbio_wire import BoundPbio, PbioWire
from .reflection import MessageInfo, generic_decode, incoming_format, peek_message
from .versioning import CompatibilityReport, check_evolution
from .files import PbioFileReader, PbioFileWriter, read_records, write_records
from .rpc import (
    RpcClient,
    RpcError,
    RpcFault,
    RpcInterface,
    RpcOperation,
    RpcServer,
    RpcTimeout,
)
from .filters import (
    FilterError,
    RecordFilter,
    RecordProjector,
    compile_predicate,
    compile_projection,
)

__all__ = [
    "PbioError",
    "FormatError",
    "UnknownFormatError",
    "MessageError",
    "LimitError",
    "ConversionError",
    "DecodeLimits",
    "DEFAULT_LIMITS",
    "WireField",
    "wire_fields_from_layout",
    "IOFormat",
    "FormatRegistry",
    "FieldMatch",
    "MatchResult",
    "match_formats",
    "ConversionPlan",
    "ConvOp",
    "OpKind",
    "build_plan",
    "InterpretedConverter",
    "generate_converter",
    "IOContext",
    "FormatHandle",
    "ContextStats",
    "Metrics",
    "ConverterCache",
    "DecodePipeline",
    "BufferPool",
    "shared_cache",
    "reset_shared_cache",
    "PbioConnection",
    "TokenResolutionError",
    "Announcer",
    "InboundNegotiator",
    "link_key",
    "PbioWire",
    "BoundPbio",
    "MessageInfo",
    "peek_message",
    "incoming_format",
    "generic_decode",
    "CompatibilityReport",
    "check_evolution",
    "PbioFileWriter",
    "PbioFileReader",
    "write_records",
    "read_records",
    "RpcInterface",
    "RpcOperation",
    "RpcClient",
    "RpcServer",
    "RpcFault",
    "RpcError",
    "RpcTimeout",
    "RecordFilter",
    "RecordProjector",
    "FilterError",
    "compile_predicate",
    "compile_projection",
]
