"""NDR message encoding: the sender side of PBIO.

"No translation is done at the writer's end" (Section 3).  A data message
is a fixed 16-byte header followed by the application's record bytes *in
the sender's natural representation* — the same buffer the application
already holds.  ``encode_segments`` therefore returns ``[header, buffer]``
without touching the record, which is why PBIO's sender cost is flat
(~3 µs in the paper's Figure 2) regardless of record size: the work is
building 16 bytes of header.

Message types:

* ``MSG_FORMAT``         — format meta-information (sent once per format);
* ``MSG_DATA``           — header + native record bytes;
* ``MSG_FORMAT_TOKEN``   — compact announcement: the sender binds its
  (context id, format id) to a format identified only by its 20-byte
  SHA-1 fingerprint plus the format server's global token — no meta
  travels (the format-service protocol, docs/wire-format.md §7);
* ``MSG_FORMAT_REQUEST`` — a receiver that cannot resolve a fingerprint
  (format server down, cold cache) asks the sender to re-announce the
  format inline; the payload is the fingerprint being requested.
* ``MSG_PING`` / ``MSG_PONG`` — link-liveness probes (docs/robustness.md
  §9): 16 bytes of payload carrying a monotonic nonce plus the sender's
  current write-queue depth.  A nonce of 0 is reserved for the *goodbye*
  ping a draining endpoint emits so peers reconnect promptly instead of
  waiting out a timeout.
* ``MSG_DATA_SEQ``       — a data message whose payload is prefixed by a
  per-``(context, format)`` monotonic u64 sequence number (starting at
  1); the durable delivery plane (docs/robustness.md §11) journals these
  before sending and retransmits them until acknowledged.
* ``MSG_ACK``            — a receiver's cumulative delivery cursor for
  one ``(context, format)`` stream, plus an optional selective-nack
  bitmap naming sequences in ``(cursor, cursor+64]`` it is still
  missing.  Strict 24-byte payload, like the other control frames.
"""

from __future__ import annotations

import struct

from .errors import MessageError
from .formats import IOFormat

MAGIC = 0xB1  # 'PBIO' message marker
VERSION = 1
MSG_FORMAT = 1
MSG_DATA = 2
MSG_FORMAT_TOKEN = 3
MSG_FORMAT_REQUEST = 4
MSG_PING = 5
MSG_PONG = 6
MSG_DATA_SEQ = 7
MSG_ACK = 8

_MSG_TYPES = (
    MSG_FORMAT,
    MSG_DATA,
    MSG_FORMAT_TOKEN,
    MSG_FORMAT_REQUEST,
    MSG_PING,
    MSG_PONG,
    MSG_DATA_SEQ,
    MSG_ACK,
)

# magic, version, msg type, pad, context id, format id, payload length
_HEADER = struct.Struct(">BBBxIII")
HEADER_SIZE = _HEADER.size

#: Public handles for callers that inline the header scan on hot paths
#: (batch decode); semantics stay defined by :func:`unpack_header`.
HEADER_STRUCT = _HEADER
MESSAGE_TYPES = frozenset(_MSG_TYPES)

FINGERPRINT_SIZE = 20  # sha1 digest length (matches IOFormat.fingerprint)
_TOKEN_PAYLOAD = struct.Struct(f">{FINGERPRINT_SIZE}sQ")  # fingerprint, token


def pack_header(msg_type: int, context_id: int, format_id: int, payload_len: int) -> bytes:
    return _HEADER.pack(MAGIC, VERSION, msg_type, context_id, format_id, payload_len)


def unpack_header(message) -> tuple[int, int, int, int]:
    """Returns (msg_type, context_id, format_id, payload_len)."""
    if len(message) < HEADER_SIZE:
        raise MessageError(f"message shorter than header ({len(message)} bytes)")
    magic, version, msg_type, context_id, format_id, payload_len = _HEADER.unpack_from(message, 0)
    if magic != MAGIC:
        raise MessageError(f"bad PBIO magic {magic:#x}")
    if version != VERSION:
        raise MessageError(f"unsupported PBIO version {version}")
    if msg_type not in _MSG_TYPES:
        raise MessageError(f"unknown message type {msg_type}")
    return msg_type, context_id, format_id, payload_len


def message_kind(message) -> int:
    """The validated message type (one of the ``MSG_*`` constants).

    The single place endpoints peek at a message's type — the header
    layout is defined here and nowhere else.
    """
    return unpack_header(message)[0]


def try_message_type(message) -> int | None:
    """Message type if ``message`` starts with a well-formed PBIO header.

    Returns ``None`` for anything else — for streams that interleave
    PBIO messages with foreign frames (RPC call headers, transports that
    deliver partial garbage), where raising would be wrong.
    """
    if len(message) < HEADER_SIZE:
        return None
    if message[0] != MAGIC or message[1] != VERSION:
        return None
    msg_type = message[2]
    if msg_type not in _MSG_TYPES:
        return None
    return msg_type


def is_pbio_message(message) -> bool:
    """True when ``message`` carries a PBIO header (vs a foreign frame)."""
    return try_message_type(message) is not None


def try_unpack_header(message) -> tuple[int, int, int, int] | None:
    """Full parsed header, or ``None`` for foreign/malformed frames.

    The non-raising twin of :func:`unpack_header`, for paths that sniff
    *and* need the ids: parsing once here and threading the tuple through
    (``DecodePipeline.open_data(header=...)``) means a steady-state data
    frame validates its 16 bytes exactly once end to end.
    """
    if len(message) < HEADER_SIZE:
        return None
    if message[0] != MAGIC or message[1] != VERSION or message[2] not in _MSG_TYPES:
        return None
    return _HEADER.unpack_from(message, 0)[2:]


def encode_format_message(context_id: int, format_id: int, fmt: IOFormat) -> bytes:
    """The one-time meta-information announcement for a format."""
    meta = fmt.to_meta_bytes()
    return pack_header(MSG_FORMAT, context_id, format_id, len(meta)) + meta


def encode_data_segments(
    context_id: int, format_id: int, native: bytes | bytearray | memoryview
) -> list[bytes | bytearray | memoryview]:
    """NDR encode: header + the application's own buffer, zero-copy.

    The returned segments are suitable for scatter-gather transmission
    (``Transport.send_segments`` / ``writev``).  The record buffer is the
    caller's object, not a copy.
    """
    return [pack_header(MSG_DATA, context_id, format_id, len(native)), native]


def encode_data_message(context_id: int, format_id: int, native) -> bytes:
    """Contiguous convenience form of :func:`encode_data_segments`."""
    return pack_header(MSG_DATA, context_id, format_id, len(native)) + bytes(native)


def encode_token_message(
    context_id: int, format_id: int, fingerprint: bytes, token: int
) -> bytes:
    """A token-only announcement: ``(fingerprint, token)``, no meta.

    28 bytes of payload regardless of format complexity — the whole
    point of the format service: meta travels once per *cluster* (to the
    server), not once per connection.
    """
    if len(fingerprint) != FINGERPRINT_SIZE:
        raise MessageError(
            f"fingerprint must be {FINGERPRINT_SIZE} bytes, got {len(fingerprint)}"
        )
    payload = _TOKEN_PAYLOAD.pack(bytes(fingerprint), token)
    return pack_header(MSG_FORMAT_TOKEN, context_id, format_id, len(payload)) + payload


def parse_token_message(message) -> tuple[int, int, bytes, int]:
    """Returns ``(context_id, format_id, fingerprint, token)``.

    Strict: the payload must be exactly fingerprint + token — a type-3
    header glued onto anything else is protocol damage, not a tolerable
    variant (this is what keeps random corruption of other message types
    from parsing as a token announcement).
    """
    msg_type, context_id, format_id, payload_len = unpack_header(message)
    if msg_type != MSG_FORMAT_TOKEN:
        raise MessageError(f"expected a token announcement, got type {msg_type}")
    payload = bytes(message[HEADER_SIZE:])
    if payload_len != _TOKEN_PAYLOAD.size or len(payload) != _TOKEN_PAYLOAD.size:
        raise MessageError(
            f"token announcement payload must be {_TOKEN_PAYLOAD.size} bytes, "
            f"header says {payload_len}, got {len(payload)}"
        )
    fingerprint, token = _TOKEN_PAYLOAD.unpack(payload)
    return context_id, format_id, fingerprint, token


def encode_format_request(context_id: int, fingerprint: bytes) -> bytes:
    """A receiver's request that the peer re-announce a format inline."""
    if len(fingerprint) != FINGERPRINT_SIZE:
        raise MessageError(
            f"fingerprint must be {FINGERPRINT_SIZE} bytes, got {len(fingerprint)}"
        )
    return pack_header(
        MSG_FORMAT_REQUEST, context_id, 0, FINGERPRINT_SIZE
    ) + bytes(fingerprint)


def parse_format_request(message) -> bytes:
    """The fingerprint a :data:`MSG_FORMAT_REQUEST` message asks for."""
    msg_type, _context_id, _format_id, payload_len = unpack_header(message)
    if msg_type != MSG_FORMAT_REQUEST:
        raise MessageError(f"expected a format request, got type {msg_type}")
    payload = bytes(message[HEADER_SIZE:])
    if payload_len != FINGERPRINT_SIZE or len(payload) != FINGERPRINT_SIZE:
        raise MessageError(
            f"format request payload must be {FINGERPRINT_SIZE} bytes, "
            f"header says {payload_len}, got {len(payload)}"
        )
    return payload


_HEARTBEAT_PAYLOAD = struct.Struct(">QQ")  # nonce, sender write-queue depth
HEARTBEAT_PAYLOAD_SIZE = _HEARTBEAT_PAYLOAD.size
GOODBYE_NONCE = 0  # reserved: "I am draining, reconnect elsewhere"


def encode_ping(nonce: int, queue_depth: int = 0) -> bytes:
    """A liveness probe: ``(nonce, queue_depth)``, 32 bytes total.

    ``nonce`` echoes back in the matching pong so a monitor can tell a
    fresh answer from a stale one; ``queue_depth`` piggybacks the
    sender's write-queue occupancy so peers see backpressure building
    before it turns into :class:`WriteQueueFull`.  Nonce 0 is the
    goodbye ping (:data:`GOODBYE_NONCE`) — no pong is expected.
    """
    payload = _HEARTBEAT_PAYLOAD.pack(nonce, queue_depth)
    return pack_header(MSG_PING, 0, 0, len(payload)) + payload


def encode_pong(nonce: int, queue_depth: int = 0) -> bytes:
    """The answer to a ping, echoing its nonce."""
    payload = _HEARTBEAT_PAYLOAD.pack(nonce, queue_depth)
    return pack_header(MSG_PONG, 0, 0, len(payload)) + payload


def _parse_heartbeat(message, expected_type: int, what: str) -> tuple[int, int]:
    msg_type, _context_id, _format_id, payload_len = unpack_header(message)
    if msg_type != expected_type:
        raise MessageError(f"expected a {what}, got type {msg_type}")
    payload = bytes(message[HEADER_SIZE:])
    if payload_len != HEARTBEAT_PAYLOAD_SIZE or len(payload) != HEARTBEAT_PAYLOAD_SIZE:
        raise MessageError(
            f"{what} payload must be {HEARTBEAT_PAYLOAD_SIZE} bytes, "
            f"header says {payload_len}, got {len(payload)}"
        )
    return _HEARTBEAT_PAYLOAD.unpack(payload)


def parse_ping(message) -> tuple[int, int]:
    """Returns ``(nonce, queue_depth)``; strict-size like the other control frames."""
    return _parse_heartbeat(message, MSG_PING, "ping")


def parse_pong(message) -> tuple[int, int]:
    """Returns ``(nonce, queue_depth)`` from a pong."""
    return _parse_heartbeat(message, MSG_PONG, "pong")


# -- durable delivery frames (docs/robustness.md §11) ------------------------

_SEQ_PREFIX = struct.Struct(">Q")  # per-(context, format) sequence number
SEQ_PREFIX_SIZE = _SEQ_PREFIX.size


def encode_data_seq(context_id: int, format_id: int, seq: int, native) -> bytes:
    """A sequenced data message: ``u64 seq | record bytes``.

    The header's payload length covers the sequence prefix, so the frame
    stays self-consistent under the same length checks as ``MSG_DATA``.
    ``seq`` is the per-``(context, format)`` monotonic counter, starting
    at 1 — 0 never travels, so cumulative ack cursors can use it as the
    "nothing delivered yet" origin.
    """
    if seq < 1:
        raise MessageError(f"sequence numbers start at 1, got {seq}")
    payload_len = SEQ_PREFIX_SIZE + len(native)
    return (
        pack_header(MSG_DATA_SEQ, context_id, format_id, payload_len)
        + _SEQ_PREFIX.pack(seq)
        + bytes(native)
    )


def parse_data_seq(message) -> tuple[int, int, int, memoryview]:
    """Returns ``(context_id, format_id, seq, record_bytes)``.

    Strict about the prefix: a type-7 frame too short to carry the
    sequence number is protocol damage, and a declared payload length
    that disagrees with the actual bytes is a torn frame.
    """
    msg_type, context_id, format_id, payload_len = unpack_header(message)
    if msg_type != MSG_DATA_SEQ:
        raise MessageError(f"expected a sequenced data message, got type {msg_type}")
    payload = memoryview(message)[HEADER_SIZE:]
    if payload_len != len(payload) or payload_len < SEQ_PREFIX_SIZE:
        raise MessageError(
            f"sequenced payload must be >= {SEQ_PREFIX_SIZE} bytes and match "
            f"the header (header says {payload_len}, got {len(payload)})"
        )
    (seq,) = _SEQ_PREFIX.unpack(payload[:SEQ_PREFIX_SIZE])
    if seq < 1:
        raise MessageError("sequenced data frame carries reserved sequence 0")
    return context_id, format_id, seq, payload[SEQ_PREFIX_SIZE:]


def seq_to_data(message) -> tuple[int, bytes]:
    """Strip the sequence prefix: ``(seq, equivalent MSG_DATA message)``.

    The bridge between the durable plane and every existing decode path:
    once deduplicated/ordered, a sequenced frame is re-headered as the
    plain data message it carries and decodes through the unchanged
    pipeline (one small copy — the price of keeping the hot path
    oblivious to sequencing).
    """
    context_id, format_id, seq, record = parse_data_seq(message)
    return seq, pack_header(MSG_DATA, context_id, format_id, len(record)) + bytes(record)


_ACK_PAYLOAD = struct.Struct(">QQQ")  # cursor, nack base, nack bitmap
ACK_PAYLOAD_SIZE = _ACK_PAYLOAD.size


def encode_ack(
    context_id: int,
    format_id: int,
    cursor: int,
    *,
    nack_base: int = 0,
    nack_bits: int = 0,
) -> bytes:
    """A cumulative ack for one stream: 24 bytes of payload, strict size.

    ``cursor`` is the highest sequence delivered *contiguously* (0 =
    nothing yet).  A non-zero ``nack_base`` adds a selective-nack bitmap:
    bit *i* of ``nack_bits`` set means sequence ``nack_base + i`` is
    missing and should be retransmitted without waiting for the cursor
    to catch up.
    """
    if cursor < 0 or nack_base < 0:
        raise MessageError("ack cursor and nack base must be non-negative")
    payload = _ACK_PAYLOAD.pack(cursor, nack_base, nack_bits & ((1 << 64) - 1))
    return pack_header(MSG_ACK, context_id, format_id, len(payload)) + payload


def parse_ack(message) -> tuple[int, int, int, int, int]:
    """Returns ``(context_id, format_id, cursor, nack_base, nack_bits)``.

    Strict-size like the other control frames: a type-8 header glued
    onto anything but exactly 24 payload bytes is protocol damage.
    """
    msg_type, context_id, format_id, payload_len = unpack_header(message)
    if msg_type != MSG_ACK:
        raise MessageError(f"expected an ack, got type {msg_type}")
    payload = bytes(message[HEADER_SIZE:])
    if payload_len != ACK_PAYLOAD_SIZE or len(payload) != ACK_PAYLOAD_SIZE:
        raise MessageError(
            f"ack payload must be {ACK_PAYLOAD_SIZE} bytes, "
            f"header says {payload_len}, got {len(payload)}"
        )
    cursor, nack_base, nack_bits = _ACK_PAYLOAD.unpack(payload)
    return context_id, format_id, cursor, nack_base, nack_bits
