"""Type extension / application evolution helpers.

Section 4.4: because PBIO matches fields by name, "new fields can be added
to messages without disruption because application components which don't
expect the new fields will simply ignore them", and the conversion
overhead a mismatch imposes "varies proportionally with the extent of the
mismatch" — so evolving applications should append fields rather than
prepend them.  These helpers let application authors check those
properties before deploying a format change.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import ConversionError
from .formats import IOFormat
from .matching import match_formats


@dataclass(frozen=True)
class CompatibilityReport:
    """What happens when records in ``new`` arrive at a reader of ``old``."""

    old: IOFormat
    new: IOFormat
    added: tuple[str, ...]  # fields new writers send that old readers ignore
    removed: tuple[str, ...]  # fields old readers expect that get defaulted
    relocated: tuple[str, ...]  # shared fields whose geometry changed
    compatible: bool  # old readers can still decode new records
    zero_cost_for_old_readers: bool  # decode remains zero-copy (same order)
    notes: tuple[str, ...] = field(default_factory=tuple)

    def describe(self) -> str:
        lines = [
            f"evolution {self.old.name!r} -> {self.new.name!r}: "
            f"{'compatible' if self.compatible else 'INCOMPATIBLE'}"
        ]
        if self.added:
            lines.append(f"  added (ignored by old readers): {', '.join(self.added)}")
        if self.removed:
            lines.append(f"  removed (defaulted for old readers): {', '.join(self.removed)}")
        if self.relocated:
            lines.append(f"  relocated (forces conversion): {', '.join(self.relocated)}")
        if self.zero_cost_for_old_readers:
            lines.append("  un-upgraded readers keep zero-copy decode")
        lines.extend(f"  note: {n}" for n in self.notes)
        return "\n".join(lines)


def check_evolution(old: IOFormat, new: IOFormat) -> CompatibilityReport:
    """Analyze a format change from the perspective of un-upgraded readers.

    ``old`` is what deployed readers expect (their native format);
    ``new`` is what upgraded writers will announce (a wire format).
    """
    notes: list[str] = []
    try:
        match = match_formats(new, old)
        compatible = True
    except ConversionError as exc:
        return CompatibilityReport(
            old=old,
            new=new,
            added=(),
            removed=(),
            relocated=(),
            compatible=False,
            zero_cost_for_old_readers=False,
            notes=(f"incompatible field change: {exc}",),
        )
    added = tuple(f.name for f in match.ignored_wire_fields)
    removed = match.missing_names
    relocated = tuple(
        m.target.name for m in match.matches if m.source is not None and not m.identical
    )
    if relocated and added and old.byte_order == new.byte_order:
        notes.append(
            "new fields shift existing offsets; appending fields at the end "
            "of the record would have preserved zero-copy decode (Section 4.4)"
        )
    elif old.byte_order != new.byte_order:
        notes.append(
            "byte orders differ between writer and reader; conversion is "
            "required regardless of field placement"
        )
    if removed:
        notes.append("removed fields decode as zero for old readers")
    return CompatibilityReport(
        old=old,
        new=new,
        added=added,
        removed=removed,
        relocated=relocated,
        compatible=compatible,
        zero_cost_for_old_readers=match.zero_copy,
        notes=tuple(notes),
    )
