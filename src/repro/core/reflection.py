"""Reflection: inspect message formats without decoding.

"PBIO supports reflection by allowing message formats to be inspected
before the message is received" (Section 4.4).  Generic components — a
message logger, a visualization gateway, a generic filter — can look at
the full field list of an incoming record type and decide what to do with
it, with no a priori knowledge of the format.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.abi import PrimKind

from . import encoder as enc
from .context import IOContext
from .errors import MessageError
from .formats import IOFormat


@dataclass(frozen=True)
class MessageInfo:
    """Envelope information extractable from any PBIO message."""

    msg_type: int
    context_id: int
    format_id: int
    payload_len: int

    @property
    def is_data(self) -> bool:
        return self.msg_type == enc.MSG_DATA

    @property
    def is_format(self) -> bool:
        return self.msg_type == enc.MSG_FORMAT

    @property
    def is_token(self) -> bool:
        """A token-only announcement (format-service protocol)."""
        return self.msg_type == enc.MSG_FORMAT_TOKEN


def peek_message(message) -> MessageInfo:
    """Inspect a message's envelope without touching the payload."""
    msg_type, context_id, format_id, payload_len = enc.unpack_header(message)
    return MessageInfo(msg_type, context_id, format_id, payload_len)


def incoming_format(ctx: IOContext, message) -> IOFormat:
    """The wire format of a data message (from cached meta-information),
    or the announced format of a format message."""
    info = peek_message(message)
    if info.is_format:
        return IOFormat.from_meta_bytes(memoryview(message)[enc.HEADER_SIZE :])
    return ctx.registry.remote_format(info.context_id, info.format_id)


def generic_decode(ctx: IOContext, message) -> dict[str, Any]:
    """Decode a data message *without* a declared expected format.

    This is the "generic component" capability: the wire format's own
    description is used as the target, so every field is surfaced.  Scalar
    values are returned with wire semantics; the record need not match
    anything the receiver knows.
    """
    import struct as _struct

    info = peek_message(message)
    if not info.is_data:
        raise MessageError("generic_decode needs a data message")
    wire_fmt = ctx.registry.remote_format(info.context_id, info.format_id)
    payload = memoryview(message)[enc.HEADER_SIZE :]
    endian = ">" if wire_fmt.byte_order == "big" else "<"
    out: dict[str, Any] = {}
    from repro.abi.types import struct_code

    for f in wire_fmt.fields:
        if f.kind is PrimKind.STRING:
            ptr_code = "Q" if f.size == 8 else "I"
            ptr = _struct.unpack_from(endian + ptr_code, payload, f.offset)[0]
            if ptr == 0:
                out[f.name] = None
            else:
                raw = bytes(payload[ptr:])
                out[f.name] = raw[: raw.index(b"\x00")].decode("utf-8")
            continue
        if f.kind is PrimKind.CHAR:
            out[f.name] = bytes(payload[f.offset : f.offset + f.count])
            continue
        if f.kind is PrimKind.FLOAT and wire_fmt.float_format == "vax":
            from repro.abi.floats import vax_d_to_ieee, vax_f_to_ieee

            raw = bytes(payload[f.offset : f.offset + f.size * f.count])
            arr = vax_f_to_ieee(raw) if f.size == 4 else vax_d_to_ieee(raw)
            out[f.name] = float(arr[0]) if f.count == 1 else tuple(float(v) for v in arr)
            continue
        code = struct_code(f.kind, f.size)
        values = _struct.unpack_from(f"{endian}{f.count}{code}", payload, f.offset)
        if f.kind is PrimKind.BOOLEAN:
            values = tuple(bool(v) for v in values)
        out[f.name] = values[0] if f.count == 1 else values
    return out
