"""The conversion runtime: one decode hot path, shared and observable.

Three pieces (see docs/wire-format.md section 6 and DESIGN.md):

* :class:`ConverterCache` — process-shareable cache of generated
  converters keyed by ``(wire fingerprint, native fingerprint,
  conversion mode, machine ABI)``; :func:`shared_cache` is the lazy
  process-global instance.
* :class:`DecodePipeline` — the single header-parse -> format-lookup ->
  zero-copy-or-convert implementation every endpoint (context, channel,
  filter, file reader, RPC server, relay) consumes.
* :class:`Metrics` — the unified counter/timing registry subsuming the
  old per-component stats objects (which survive as views).
"""

from .cache import CacheEntry, ConverterCache, machine_key, reset_shared_cache, shared_cache
from .metrics import (
    ContextStats,
    DownstreamStats,
    DurableStats,
    Metrics,
    StageTiming,
    SubscriberStats,
)
from .pipeline import DecodePipeline
from .pool import BufferPool, Lease

__all__ = [
    "BufferPool",
    "Lease",
    "CacheEntry",
    "ContextStats",
    "ConverterCache",
    "DecodePipeline",
    "DownstreamStats",
    "DurableStats",
    "Metrics",
    "StageTiming",
    "SubscriberStats",
    "machine_key",
    "reset_shared_cache",
    "shared_cache",
]
