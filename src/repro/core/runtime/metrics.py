"""Unified metrics for the conversion runtime.

One :class:`Metrics` registry holds every counter the decode path
maintains — converter generation, cache hits, zero-copy vs converted
decodes, delivery/filter outcomes — plus optional per-stage wall-clock
timings.  The former ad-hoc ``ContextStats`` / ``SubscriberStats``
dataclasses survive as read-only *views* over a registry, so existing
code (``receiver.stats.converters_generated``) keeps working while the
benchmark harness and new subsystems observe one coherent namespace.

Counter names used by the runtime:

========================  =====================================================
``converters_generated``  converters built (DCG, vcode or interpreter tables)
``converter_cache_hits``  decode found its (wire, native) entry already cached
``zero_copy_decodes``     records delivered without conversion
``converted_decodes``     records that ran a converter
``generation_time_s``     cumulative converter-generation wall time (float)
``delivered`` / ``filtered_out`` / ``wrong_type``   subscription outcomes
``decode_errors`` / ``handler_errors`` / ``detached``   subscription failures
``forwarded`` / ``announcements``                   relay downstream outcomes
``send_errors`` / ``detached``                      relay downstream failures
``faults.*``              injected faults (:mod:`repro.net.faults`)
``reconnects`` / ``announcements_replayed`` / ``dial_failures``  reconnect layer
``requests_served`` / ``dedup_hits`` / ``servant_errors``        RPC server
``calls`` / ``retries`` / ``transport_errors`` / ``stale_replies``  RPC client
``decode.rejected``       messages refused by the validated decode frontend
                          (malformed, inconsistent, or over a DecodeLimits
                          bound) — incremented exactly once per rejection
``cache.evictions``       converter-cache entries dropped at ``max_entries``
``relay.rejected``        non-PBIO / oversized / inconsistent frames a relay
                          dropped instead of forwarding
``file.corrupt_records``  CRC-mismatched (or undecodable) file frames
``file.torn_tails``       incomplete trailing frames (crash mid-append)
``file.recovered_records``  records delivered *after* file damage was seen
                          (what ``recover="skip"`` salvaged over ``"stop"``)
``fmtserv.*``             format-service counters (:mod:`repro.fmtserv`):
                          server side ``registered`` / ``reregistered`` /
                          ``rejected`` / ``quota_rejections`` / ``lookups`` /
                          ``lookup_hits`` / ``lookup_misses`` / ``purged`` /
                          ``protocol_errors`` / ``connections_dropped``;
                          client side ``hits`` / ``misses`` /
                          ``negative_hits`` / ``server_unreachable`` /
                          ``server_rejections`` / ``inline_fallbacks`` /
                          ``warm_started``; cache file ``cache_loaded`` /
                          ``cache_persisted`` / ``cache_torn`` /
                          ``cache_corrupt`` / ``cache_expired``; token
                          negotiation ``tokens_absorbed`` / ``unresolved`` /
                          ``meta_requests_sent`` / ``meta_requests_served`` /
                          ``meta_requests_unknown`` / ``messages_held`` /
                          ``messages_released``
``relay.unresolved_tokens``  token announcements a relay forwarded without
                          being able to resolve for its own filter registry
``relay.requests_dropped``  MSG_FORMAT_REQUEST frames dropped by a one-way hub
``decode.batch.calls``    ``decode_batch`` invocations
``decode.batch.messages``  frames handed to ``decode_batch`` (all types)
``decode.batch.groups``   consecutive same-format data runs dispatched
``decode.batch.converted``  records converted by the columnar batch converter
``decode.batch.fallback``  records that looped the scalar converter instead
                          (strings, VAX floats, non-DCG modes)
``decode.batch.rejected``  frames rejected inside a batch (each also counts
                          ``decode.rejected`` as usual)
``durable.journaled``     records appended to a publisher WAL before send
``durable.sent``          sequenced frames handed to the wire (first send)
``durable.acked``         sequences confirmed by a cumulative ack cursor
``durable.acks_sent`` / ``durable.acks_received``  MSG_ACK traffic per side
``durable.retransmitted``  unacked frames re-sent (reconnect or nack)
``durable.duplicates_dropped``  redelivered frames the dedup window absorbed
``durable.reordered``     frames buffered out of order, later delivered
``durable.nacks_sent``    selective-nack bitmaps emitted for gaps
``durable.segments_rotated`` / ``durable.segments_compacted``  WAL maintenance
``durable.wal_torn`` / ``durable.wal_corrupt``  damage healed on WAL open
``durable.replayed``      frames replayed from a relay's in-memory window
                          on downstream reactivation
========================  =====================================================

Stage timings (``decode.parse``, ``decode.resolve``, ``decode.convert``)
are recorded only while ``timing_enabled`` is set: the hot path must not
pay two ``perf_counter`` calls per stage when nobody is looking.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter


class StageTiming:
    """Accumulated wall time for one named pipeline stage."""

    __slots__ = ("count", "total_s")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StageTiming(count={self.count}, total_s={self.total_s:.6f})"


class Metrics:
    """A registry of named counters and per-stage timings.

    Counters are created on first increment and read as 0 when absent;
    a registry can therefore be shared between components that count
    different things (a context, its cache, a buffer pool) without any
    schema declaration.
    """

    __slots__ = ("_counters", "_timings", "timing_enabled")

    def __init__(self, *, timing_enabled: bool = False) -> None:
        self._counters: dict[str, int | float] = {}
        self._timings: dict[str, StageTiming] = {}
        #: when False (the default) ``observe``/``time`` are no-ops so the
        #: decode hot path never pays for clock reads nobody consumes
        self.timing_enabled = timing_enabled

    # -- counters -----------------------------------------------------------

    def inc(self, name: str, amount: int | float = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + amount

    add = inc  # reads better for float accumulators (generation_time_s)

    def value(self, name: str) -> int | float:
        return self._counters.get(name, 0)

    def counters(self) -> dict[str, int | float]:
        return dict(self._counters)

    # -- stage timings ------------------------------------------------------

    def observe(self, stage: str, seconds: float) -> None:
        """Record one timed execution of ``stage`` (respects the flag)."""
        if not self.timing_enabled:
            return
        timing = self._timings.get(stage)
        if timing is None:
            timing = self._timings[stage] = StageTiming()
        timing.count += 1
        timing.total_s += seconds

    @contextmanager
    def time(self, stage: str):
        """Context manager form of :meth:`observe` for coarse stages."""
        if not self.timing_enabled:
            yield
            return
        t0 = perf_counter()
        try:
            yield
        finally:
            self.observe(stage, perf_counter() - t0)

    def timing(self, stage: str) -> StageTiming:
        timing = self._timings.get(stage)
        if timing is None:
            timing = self._timings[stage] = StageTiming()
        return timing

    def timings(self) -> dict[str, StageTiming]:
        return dict(self._timings)

    # -- aggregation --------------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-serializable dump (the benchmark harness exports this)."""
        return {
            "counters": dict(self._counters),
            "timings": {
                name: {"count": t.count, "total_s": t.total_s, "mean_s": t.mean_s}
                for name, t in self._timings.items()
            },
        }

    def merge(self, other: "Metrics") -> None:
        """Fold another registry's counts into this one (harness rollups)."""
        for name, amount in other._counters.items():
            self.inc(name, amount)
        for stage, timing in other._timings.items():
            mine = self._timings.get(stage)
            if mine is None:
                mine = self._timings[stage] = StageTiming()
            mine.count += timing.count
            mine.total_s += timing.total_s

    def reset(self) -> None:
        self._counters.clear()
        self._timings.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Metrics({self._counters!r})"


class _MetricsView:
    """Read-only attribute view over a :class:`Metrics` registry.

    Subclasses list the counter names they expose; attribute access
    returns the live counter value, so the view never goes stale.
    """

    __slots__ = ("_metrics",)
    _fields: tuple[str, ...] = ()
    #: prepended to each field when reading the registry, letting a view
    #: expose a dotted counter namespace (``durable.*``) as attributes
    _prefix: str = ""

    def __init__(self, metrics: Metrics) -> None:
        self._metrics = metrics

    @property
    def metrics(self) -> Metrics:
        return self._metrics

    def __getattr__(self, name: str):
        cls = type(self)
        if name in cls._fields:
            return self._metrics.value(cls._prefix + name)
        raise AttributeError(name)

    def as_dict(self) -> dict[str, int | float]:
        cls = type(self)
        return {name: self._metrics.value(cls._prefix + name) for name in cls._fields}

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"{type(self).__name__}({body})"


class ContextStats(_MetricsView):
    """Per-context decode counters (kept for backward compatibility)."""

    __slots__ = ()
    _fields = (
        "converters_generated",
        "converter_cache_hits",
        "zero_copy_decodes",
        "converted_decodes",
        "generation_time_s",
    )


class SubscriberStats(_MetricsView):
    """Per-subscription delivery counters."""

    __slots__ = ()
    _fields = (
        "delivered",
        "filtered_out",
        "wrong_type",
        "decode_errors",
        "handler_errors",
        "detached",
    )


class DurableStats(_MetricsView):
    """Durable-delivery counters (the ``durable.*`` namespace)."""

    __slots__ = ()
    _prefix = "durable."
    _fields = (
        "journaled",
        "sent",
        "acked",
        "acks_sent",
        "acks_received",
        "retransmitted",
        "duplicates_dropped",
        "reordered",
        "nacks_sent",
        "segments_rotated",
        "segments_compacted",
        "wal_torn",
        "wal_corrupt",
        "replayed",
    )


class DownstreamStats(_MetricsView):
    """Per-relay-downstream forwarding counters."""

    __slots__ = ()
    _fields = (
        "forwarded",
        "filtered_out",
        "announcements",
        "send_errors",
        "detached",
        "replayed",
        "reactivated",
        "evicted",
        "probes_sent",
        "overflow_queued",
        "overflow_dropped",
        "overflow_flushed",
        "goodbyes_sent",
    )
