"""The decode pipeline: the one receive-side hot path.

Before this module existed, the header-parse -> remote-format lookup ->
expected-format resolution -> zero-copy-or-convert sequence was
re-implemented by ``IOContext``, the event channel, record filters, PBIO
files, the RPC server loop and the relay.  :class:`DecodePipeline` is now
the single implementation all of them consume, which is what makes the
path optimizable (batching, async, sharding) and observable (one
:class:`~repro.core.runtime.metrics.Metrics` namespace, one
:class:`~repro.core.runtime.cache.ConverterCache`) at all.

Stages
------

1. **parse** — validate the 16-byte header (:mod:`repro.core.encoder`);
2. **resolve** — look up the announced wire format in the registry and
   the receiver's expected native format by record name;
3. **dispatch** — consult the converter cache: zero-copy pairs return
   the payload (or a view over it) untouched; mismatched pairs run the
   cached converter, writing into a pooled destination buffer when the
   caller asked for a view.

Per-stage wall-clock timings are recorded when the pipeline's metrics
registry has ``timing_enabled`` set (off by default: the hot path pays
nothing for observability nobody reads).
"""

from __future__ import annotations

from time import perf_counter
from typing import Any

from repro.abi import MachineDescription, RecordView, StructLayout

import struct

from .. import encoder as enc
from ..conversion import (
    NUMPY_THRESHOLD,
    InterpretedConverter,
    build_batch_converter,
    build_plan,
    build_var_batch_converter,
    generate_converter,
)
from ..errors import (
    ConversionError,
    FormatError,
    LimitError,
    MessageError,
    PbioError,
    TokenResolutionError,
)
from ..formats import IOFormat
from ..matching import match_formats
from ..registry import FormatRegistry
from ..safety import DEFAULT_LIMITS, DecodeLimits
from .cache import CacheEntry, ConverterCache
from .metrics import Metrics
from .pool import BufferPool

#: Stdlib/numpy exceptions a converter or code generator may leak when
#: fed structurally valid but content-hostile input; decode paths wrap
#: them into the PbioError taxonomy so callers see exactly one family.
_LEAKY_ERRORS = (struct.error, ValueError, IndexError, KeyError, OverflowError, UnicodeDecodeError)


class DecodePipeline:
    """Receive-side decode machinery shared by every PBIO endpoint.

    The pipeline does not own the registry or the expected-format table —
    it borrows the context's (they are live references, so ``expect()``
    calls are visible immediately).  The converter cache may be private
    or shared between any number of pipelines; the cache key includes the
    conversion mode and machine ABI, so sharing is always safe.
    """

    __slots__ = (
        "registry",
        "expected",
        "machine",
        "conversion",
        "cache",
        "metrics",
        "pool",
        "limits",
        "resolver",
        "_max_msg",
        "_memo",
    )

    def __init__(
        self,
        *,
        registry: FormatRegistry,
        expected: dict[str, IOFormat],
        machine: MachineDescription,
        conversion: str = "dcg",
        cache: ConverterCache | None = None,
        metrics: Metrics | None = None,
        pool: BufferPool | None = None,
        limits: DecodeLimits | None = DEFAULT_LIMITS,
    ) -> None:
        self.registry = registry
        self.expected = expected
        self.machine = machine
        self.conversion = conversion
        self.limits = limits
        # Hoisted ceiling: the per-message hot path pays one local load
        # and one compare, not two attribute chases.
        self._max_msg = limits.max_message_size if limits is not None else None
        if cache is None:
            cache = ConverterCache(
                max_entries=limits.max_cache_entries if limits is not None else None
            )
        self.cache = cache
        self.metrics = metrics if metrics is not None else Metrics()
        self.pool = pool if pool is not None else BufferPool()
        #: Fingerprint resolver for token-only announcements — typically
        #: a :meth:`repro.fmtserv.FormatService.resolve` bound method.
        #: ``None`` means this pipeline cannot absorb tokens by itself.
        self.resolver: Any = None
        # Lock-free per-pipeline front for the (possibly shared, locked)
        # cache: this pipeline's machine and conversion mode are fixed,
        # so (wire, native) fingerprints alone identify an entry.
        self._memo: dict[tuple[bytes, bytes], CacheEntry] = {}

    # -- stage 1+2: parse and resolve ---------------------------------------

    def open_data(self, message, *, header=None) -> tuple[IOFormat, memoryview]:
        """Validate a data message; return its wire format and payload.

        The first stop for untrusted bytes on every decode path: the
        header must parse, the message must fit the configured
        :class:`DecodeLimits`, the payload must match the header's
        declared length *and* the wire format's record size (string
        formats carry a variable region after the fixed record, so they
        may be longer — never shorter).  Failures raise the PbioError
        taxonomy and count as ``decode.rejected``.

        ``header`` may carry the already-parsed
        ``(msg_type, context_id, format_id, payload_len)`` tuple when an
        upstream stage (negotiation, :meth:`ingest`) validated the header
        — steady-state data frames then parse exactly once.
        """
        try:
            if self._max_msg is not None and len(message) > self._max_msg:
                raise LimitError(
                    f"message of {len(message)} bytes exceeds max_message_size "
                    f"({self._max_msg})"
                )
            msg_type, context_id, format_id, payload_len = (
                enc.unpack_header(message) if header is None else header
            )
            if msg_type != enc.MSG_DATA:
                raise MessageError("expected a data message")
            payload = memoryview(message)[enc.HEADER_SIZE :]
            if len(payload) != payload_len:
                raise MessageError(
                    f"payload length mismatch: header says {payload_len}, got {len(payload)}"
                )
            wire_fmt = self.registry.remote_format(context_id, format_id)
            if payload_len != wire_fmt.record_size and (
                payload_len < wire_fmt.record_size or not wire_fmt.has_strings
            ):
                raise MessageError(
                    f"payload of {payload_len} bytes does not cover a "
                    f"{wire_fmt.record_size}-byte {wire_fmt.name!r} record"
                )
            return wire_fmt, payload
        except PbioError:
            self.metrics.inc("decode.rejected")
            raise

    def native_for(self, wire_fmt: IOFormat) -> IOFormat:
        """The expected native format matching ``wire_fmt`` by name."""
        native = self.expected.get(wire_fmt.name)
        if native is None:
            raise FormatError(
                f"no expected format declared for {wire_fmt.name!r}; "
                f"call expect() or use reflection to inspect the format"
            )
        return native

    def absorb(self, message, context_id: int, format_id: int) -> None:
        """Register the format carried by an announcement message.

        Validation order matters: the meta block is parsed and
        structurally validated (``from_meta_bytes`` under this
        pipeline's limits) *before* the per-peer format quota is
        consulted, and the quota only applies to genuinely new
        (context, id) pairs — benign re-announcements never trip it.
        """
        try:
            meta = memoryview(message)[enc.HEADER_SIZE :]
            declared = enc.unpack_header(message)[3]
            if len(meta) != declared:
                raise MessageError(
                    f"meta payload length mismatch: header says {declared}, "
                    f"got {len(meta)}"
                )
            fmt = IOFormat.from_meta_bytes(meta, limits=self.limits)
            if (
                self.limits is not None
                and not self.registry.knows_remote(context_id, format_id)
                and self.registry.remote_count(context_id) >= self.limits.max_formats_per_peer
            ):
                raise LimitError(
                    f"peer {context_id:#010x} exceeded max_formats_per_peer "
                    f"({self.limits.max_formats_per_peer})"
                )
            self.registry.register_remote(context_id, format_id, fmt)
        except PbioError:
            self.metrics.inc("decode.rejected")
            raise

    def absorb_token(self, message) -> None:
        """Register a token-only announcement, resolving the fingerprint.

        Resolution goes through :attr:`resolver` (a format service's
        cache ladder).  Failure raises
        :class:`~repro.core.errors.TokenResolutionError`, counted as
        ``fmtserv.unresolved`` — deliberately *not* ``decode.rejected``:
        an unresolvable token is a cache/availability condition, not
        hostile input, and duplex endpoints recover from it by asking
        the announcer for inline meta.  Malformed token frames and quota
        violations are protocol damage as usual.
        """
        try:
            context_id, format_id, fingerprint, _token = enc.parse_token_message(message)
        except PbioError:
            self.metrics.inc("decode.rejected")
            raise
        if self.registry.knows_remote(context_id, format_id):
            known = self.registry.remote_format(context_id, format_id)
            if known.fingerprint == fingerprint:
                return  # benign re-announcement (replays, reconnects)
            self.metrics.inc("decode.rejected")
            raise FormatError(
                f"context {context_id:#010x} re-announced id {format_id} "
                f"with a different fingerprint"
            )
        fmt = self.resolver(fingerprint) if self.resolver is not None else None
        if fmt is None or fmt.fingerprint != fingerprint:
            self.metrics.inc("fmtserv.unresolved")
            raise TokenResolutionError(context_id, format_id, fingerprint)
        try:
            if (
                self.limits is not None
                and self.registry.remote_count(context_id)
                >= self.limits.max_formats_per_peer
            ):
                raise LimitError(
                    f"peer {context_id:#010x} exceeded max_formats_per_peer "
                    f"({self.limits.max_formats_per_peer})"
                )
            self.registry.register_remote(context_id, format_id, fmt)
        except PbioError:
            self.metrics.inc("decode.rejected")
            raise
        self.metrics.inc("fmtserv.tokens_absorbed")

    # -- stage 3: converter resolution --------------------------------------

    def entry_for(self, wire_fmt: IOFormat, native: IOFormat) -> CacheEntry:
        """The cached conversion decision for one format pair.

        Mirrors the cache outcome into this pipeline's own metrics so
        per-context counters stay meaningful under a shared cache.
        """
        memo_key = (wire_fmt.fingerprint, native.fingerprint)
        entry = self._memo.get(memo_key)
        if entry is not None:
            self.metrics.inc("converter_cache_hits")
            self.cache.metrics.inc("converter_cache_hits")
            return entry
        try:
            entry, outcome = self.cache.resolve(
                wire_fmt, native, self.conversion, self.machine, self._build_entry
            )
        except PbioError:
            raise
        except _LEAKY_ERRORS as exc:
            # A format pair that passed structural validation but still
            # broke converter generation: protocol damage, not a crash.
            raise FormatError(
                f"cannot build converter {wire_fmt.name!r} -> {native.name!r}: {exc}"
            ) from exc
        if outcome == "hit":
            self.metrics.inc("converter_cache_hits")
        elif outcome == "built":
            self.metrics.inc("converters_generated")
            self.metrics.add("generation_time_s", entry.generation_time_s)
        if (
            self.limits is not None
            and len(self._memo) >= self.limits.max_cache_entries
        ):
            self._memo.clear()  # keep the lock-free front bounded too
        self._memo[memo_key] = entry
        return entry

    def set_cache(self, cache: ConverterCache) -> None:
        """Re-point at another (shared) cache, dropping the local front."""
        self.cache = cache
        self._memo.clear()

    def _build_entry(self, wire_fmt: IOFormat, native: IOFormat) -> CacheEntry:
        match = match_formats(wire_fmt, native)
        if match.zero_copy:
            return CacheEntry(
                zero_copy=True,
                converter=None,
                source=None,
                wire_name=wire_fmt.name,
                native_name=native.name,
                native_size=native.record_size,
                supports_dst=False,
            )
        plan = build_plan(wire_fmt, native, match)
        batch = None
        var_batch = None
        if self.conversion == "interpreted":
            converter = InterpretedConverter(plan)
            source = plan.describe()
            generation_time_s = 0.0
        else:
            generated = generate_converter(
                plan, backend="python" if self.conversion == "dcg" else "vcode"
            )
            converter = generated.convert
            source = generated.source
            generation_time_s = generated.generation_time_s
            if self.conversion == "dcg":
                # Columnar N-records-at-once form, cached alongside the
                # scalar converter.  DCG only: the interpreter and vcode
                # modes exist to measure *their* per-record mechanism, so
                # batch decodes loop their scalar converters instead.
                batch = build_batch_converter(plan)
                var_batch = build_var_batch_converter(plan)
        return CacheEntry(
            zero_copy=False,
            converter=converter,
            source=source,
            wire_name=wire_fmt.name,
            native_name=native.name,
            native_size=native.record_size,
            supports_dst=not plan.has_strings,
            generation_time_s=generation_time_s,
            batch=batch,
            var_batch=var_batch,
        )

    # -- public decode entry points -----------------------------------------

    def decode_native(self, message, *, header=None) -> bytes:
        """Decode to record bytes in the pipeline's native layout."""
        if self.metrics.timing_enabled:
            return self._decode_native_timed(message)
        wire_fmt, payload = self.open_data(message, header=header)
        try:
            entry = self.entry_for(wire_fmt, self.native_for(wire_fmt))
            if entry.zero_copy:
                self.metrics.inc("zero_copy_decodes")
                return bytes(payload)
            self.metrics.inc("converted_decodes")
            return self._run_converter(entry, wire_fmt, payload)
        except PbioError:
            self.metrics.inc("decode.rejected")
            raise

    def decode_view(self, message, *, header=None, lease=None) -> RecordView:
        """Decode to a :class:`RecordView`.

        Zero-copy pairs view the *message buffer itself*; converted pairs
        write into a pooled destination buffer that is recycled only once
        the view (the sole owner callers see) is garbage collected.

        ``lease`` (a :class:`~repro.core.runtime.pool.Lease`) is attached
        to zero-copy views when the message aliases borrowed storage (a
        lent receive buffer, an mmap'd file): the storage outlives every
        view because each view holds the lease alive.
        """
        if self.metrics.timing_enabled:
            return self._decode_view_timed(message)
        wire_fmt, payload = self.open_data(message, header=header)
        try:
            native = self.native_for(wire_fmt)
            entry = self.entry_for(wire_fmt, native)
            layout = self._layout_of(native)
            if entry.zero_copy:
                self.metrics.inc("zero_copy_decodes")
                return RecordView(layout, payload, lease=lease)
            self.metrics.inc("converted_decodes")
            if entry.supports_dst:
                buf = self.pool.acquire(entry.native_size)
                view = RecordView(layout, self._run_converter(entry, wire_fmt, payload, buf))
                self.pool.attach(view, buf)
                return view
            return RecordView(layout, self._run_converter(entry, wire_fmt, payload))
        except PbioError:
            self.metrics.inc("decode.rejected")
            raise

    def decode(self, message, *, header=None) -> dict[str, Any]:
        """Decode to a fully materialized value dict."""
        view = self.decode_view(message, header=header)
        try:
            return view.to_dict()
        except _LEAKY_ERRORS as exc:
            # Zero-copy string records materialize straight from the
            # message buffer; a bogus pointer or missing NUL lands here.
            self.metrics.inc("decode.rejected")
            raise ConversionError(f"malformed record content: {exc}") from exc

    def ingest(self, message) -> dict[str, Any] | None:
        """Process one message of either type.

        Announcements are absorbed into the registry (returns ``None``);
        data messages decode to a value dict.
        """
        try:
            if self._max_msg is not None and len(message) > self._max_msg:
                raise LimitError(
                    f"message of {len(message)} bytes exceeds max_message_size "
                    f"({self._max_msg})"
                )
            header = enc.unpack_header(message)
        except PbioError:
            self.metrics.inc("decode.rejected")
            raise
        msg_type, context_id, format_id, _ = header
        if msg_type == enc.MSG_DATA:
            # Thread the parsed header through: steady-state data frames
            # validate the 16 bytes exactly once end to end.
            return self.decode(message, header=header)
        if msg_type == enc.MSG_DATA_SEQ:
            # A durable frame reaching a plain decode path: strip the
            # sequence prefix and decode the record it carries.  Dedup
            # and ordering (when wanted) live in DurableSubscription,
            # above this layer — here the sequence is just framing.
            try:
                _seq, data = enc.seq_to_data(message)
            except PbioError:
                self.metrics.inc("decode.rejected")
                raise
            return self.decode(data)
        if msg_type == enc.MSG_FORMAT:
            self.absorb(message, context_id, format_id)
            return None
        if msg_type == enc.MSG_FORMAT_TOKEN:
            self.absorb_token(message)
            return None
        # MSG_FORMAT_REQUEST / MSG_PING / MSG_PONG / MSG_ACK: link-level
        # control addressed to a *peer endpoint* and handled by the
        # negotiation, health or durable layer; one reaching a bare decode
        # path is mis-delivery.
        self.metrics.inc("decode.rejected")
        raise MessageError(
            f"link control message (type {msg_type}) outside a negotiated stream"
        )

    # -- batch decode ---------------------------------------------------------

    def decode_batch(
        self, messages, *, on_error: str = "raise", lend: bool = False, lease=None
    ) -> list:
        """Decode a list of frames in one pass; one result slot per frame.

        Frames are parsed once each, announcements are absorbed in
        arrival order (their slots are ``None``), and consecutive data
        frames of the same (context id, format id) form a *group* that
        dispatches one batch-converter call instead of N scalar ones.
        Results are byte-for-byte what a sequential
        :meth:`ingest`/:meth:`decode` loop would produce, under the same
        :class:`DecodeLimits`.

        ``on_error`` selects the failure granularity: ``"raise"``
        (default) propagates the first rejection, exactly like the
        sequential loop; ``"skip"`` confines each rejection to its own
        frame — the bad frame's slot stays ``None``, it is counted in
        ``decode.rejected``/``decode.batch.rejected``, and every other
        frame still decodes.

        ``lend=True`` returns :class:`RecordView` objects instead of
        dicts.  Zero-copy (homogeneous) frames view the *message buffer
        itself* with ``lease`` attached — no payload byte is copied; the
        caller's buffer must stay untouched until every returned view
        dies (views keep ``lease`` — and through it the buffer — alive).
        Converted frames view private converted bytes and carry no lease.
        Call :meth:`~repro.abi.views.RecordView.detach` on a lent view
        before storing it beyond the receive loop.
        """
        return self._decode_batch(messages, on_error, native_out=False, lend=lend, lease=lease)

    def decode_batch_native(
        self, messages, *, on_error: str = "raise", lend: bool = False, lease=None
    ) -> list:
        """:meth:`decode_batch` returning native record bytes per frame
        (the batch analogue of :meth:`decode_native`).

        ``lend=True`` returns memoryviews instead of copied ``bytes``:
        zero-copy frames alias the message buffers (valid only while
        ``lease`` is held), converted frames are views of a private
        conversion blob (no lease needed, but mutating them is on you).
        """
        return self._decode_batch(messages, on_error, native_out=True, lend=lend, lease=lease)

    def _decode_batch(
        self, messages, on_error: str, native_out: bool, lend: bool = False, lease=None
    ) -> list:
        if on_error not in ("raise", "skip"):
            raise ValueError(f'on_error must be "raise" or "skip", not {on_error!r}')
        out: list = [None] * len(messages)
        self.metrics.inc("decode.batch.calls")
        self.metrics.inc("decode.batch.messages", len(messages))
        strict = on_error == "raise"
        group: list[tuple[int, int]] = []  # (frame index, declared payload len)
        gkey: tuple[int, int] | None = None

        def flush() -> None:
            nonlocal group, gkey
            if group:
                self._decode_group(msgs, group, gkey, out, strict, native_out, lend, lease)
                group = []
            gkey = None

        max_msg = self._max_msg
        msgs = messages  # swapped for a mutable copy only if seq frames appear
        # Header scan, inlined: one Struct.unpack_from per message on the
        # fast path; anything anomalous re-parses through unpack_header
        # so rejects keep its exact error messages.
        unpack_from = enc.HEADER_STRUCT.unpack_from
        magic_want, version_want = enc.MAGIC, enc.VERSION
        msg_types = enc.MESSAGE_TYPES
        header_size = enc.HEADER_SIZE
        for i, message in enumerate(messages):
            try:
                if max_msg is not None and len(message) > max_msg:
                    raise LimitError(
                        f"message of {len(message)} bytes exceeds max_message_size "
                        f"({max_msg})"
                    )
                if len(message) >= header_size:
                    magic, version, msg_type, context_id, format_id, payload_len = (
                        unpack_from(message, 0)
                    )
                    if (
                        magic != magic_want
                        or version != version_want
                        or msg_type not in msg_types
                    ):
                        msg_type, context_id, format_id, payload_len = (
                            enc.unpack_header(message)
                        )
                else:
                    msg_type, context_id, format_id, payload_len = enc.unpack_header(
                        message
                    )
            except PbioError:
                flush()
                self.metrics.inc("decode.rejected")
                self.metrics.inc("decode.batch.rejected")
                if strict:
                    raise
                continue
            if msg_type == enc.MSG_DATA_SEQ:
                # Re-header as the plain data frame it carries so the run
                # grouping and batch converter below stay oblivious to
                # sequencing.  The copy is lazy: purely non-durable
                # batches never pay for it.
                try:
                    _seq, stripped = enc.seq_to_data(message)
                except PbioError:
                    flush()
                    self.metrics.inc("decode.rejected")
                    self.metrics.inc("decode.batch.rejected")
                    if strict:
                        raise
                    continue
                if msgs is messages:
                    msgs = list(messages)
                msgs[i] = stripped
                msg_type = enc.MSG_DATA
                payload_len -= enc.SEQ_PREFIX_SIZE
            if msg_type == enc.MSG_DATA:
                key = (context_id, format_id)
                if key != gkey:
                    flush()
                    gkey = key
                group.append((i, payload_len))
                continue
            # Control frames break the run and are absorbed in order, so
            # a format (re-)announcement takes effect before the data
            # frames behind it — same semantics as the sequential loop.
            flush()
            if msg_type == enc.MSG_FORMAT:
                try:
                    self.absorb(message, context_id, format_id)
                except PbioError:  # absorb counted decode.rejected already
                    self.metrics.inc("decode.batch.rejected")
                    if strict:
                        raise
            elif msg_type == enc.MSG_FORMAT_TOKEN:
                try:
                    self.absorb_token(message)
                except TokenResolutionError:
                    if strict:
                        raise
                except PbioError:
                    self.metrics.inc("decode.batch.rejected")
                    if strict:
                        raise
            else:  # request/ping/pong/ack: mis-delivery, as in ingest()
                self.metrics.inc("decode.rejected")
                self.metrics.inc("decode.batch.rejected")
                if strict:
                    raise MessageError(
                        f"link control message (type {msg_type}) outside a negotiated stream"
                    )
        flush()
        return out

    def _decode_group(
        self,
        messages,
        group,
        key,
        out,
        strict: bool,
        native_out: bool,
        lend: bool = False,
        lease=None,
    ) -> None:
        """Decode one run of same-format data frames into ``out`` slots."""
        self.metrics.inc("decode.batch.groups")
        context_id, format_id = key

        def reject(exc: PbioError) -> None:
            self.metrics.inc("decode.rejected")
            self.metrics.inc("decode.batch.rejected")
            if strict:
                raise exc

        try:
            wire_fmt = self.registry.remote_format(context_id, format_id)
            native = self.native_for(wire_fmt)
            entry = self.entry_for(wire_fmt, native)
            layout = None if native_out else self._layout_of(native)
        except PbioError as exc:
            for _ in group:  # unresolvable format rejects every frame of the run
                reject(exc)
            return

        def materialize(i: int, buf, borrowed: bool = False) -> None:
            if native_out:
                if lend:
                    # Borrowed payloads alias the caller's buffer under
                    # `lease`; converted outputs are views of a private
                    # blob, safe to hand out without a copy.
                    out[i] = buf
                else:
                    out[i] = bytes(buf) if not isinstance(buf, bytes) else buf
                return
            if lend:
                # Views: borrowed payloads carry the lease so the buffer
                # outlives them; converted outputs are private bytes.
                out[i] = RecordView(layout, buf, lease=lease if borrowed else None)
                return
            try:
                out[i] = RecordView(layout, buf).to_dict()
            except _LEAKY_ERRORS as exc:
                reject(ConversionError(f"malformed record content: {exc}"))

        rec_size = wire_fmt.record_size
        has_strings = wire_fmt.has_strings
        valid: list[tuple[int, memoryview]] = []
        for i, declared in group:
            payload = memoryview(messages[i])[enc.HEADER_SIZE :]
            if len(payload) != declared:
                reject(
                    MessageError(
                        f"payload length mismatch: header says {declared}, "
                        f"got {len(payload)}"
                    )
                )
                continue
            if declared != rec_size and (declared < rec_size or not has_strings):
                reject(
                    MessageError(
                        f"payload of {declared} bytes does not cover a "
                        f"{rec_size}-byte {wire_fmt.name!r} record"
                    )
                )
                continue
            valid.append((i, payload))
        if not valid:
            return

        n = len(valid)
        if entry.zero_copy:
            self.metrics.inc("zero_copy_decodes", n)
            if lend:
                self.metrics.inc("decode.batch.lent", n)
            for i, payload in valid:
                materialize(i, payload, borrowed=True)
            return

        batch = entry.batch
        if batch is not None and not has_strings:
            # Fixed-size frames only reach here (declared == rec_size was
            # enforced above), so the concatenation is exactly n strides.
            try:
                blob = batch.convert(b"".join(valid_p for _, valid_p in valid), n)
            except _LEAKY_ERRORS:
                pass  # fall through to the scalar loop to isolate the culprit
            else:
                self.metrics.inc("converted_decodes", n)
                self.metrics.inc("decode.batch.converted", n)
                d = entry.native_size
                for j, (i, _) in enumerate(valid):
                    materialize(i, blob[j * d : (j + 1) * d])
                return

        var_batch = entry.var_batch
        if var_batch is not None and has_strings and n >= NUMPY_THRESHOLD:
            # Var-length columnar pass: offset tables + one strided tail
            # move.  convert_var returns None (and we fall through to the
            # scalar loop) when any frame would make the scalar converter
            # raise — per-frame isolation is preserved down there.
            try:
                blobs = var_batch.convert_var([p for _, p in valid])
            except _LEAKY_ERRORS:
                blobs = None
            if blobs is not None:
                self.metrics.inc("converted_decodes", n)
                self.metrics.inc("decode.batch.converted", n)
                if native_out and not lend:
                    for (i, _), blob in zip(valid, blobs):
                        out[i] = bytes(blob)
                elif native_out:
                    for (i, _), blob in zip(valid, blobs):
                        out[i] = blob
                else:
                    for (i, _), blob in zip(valid, blobs):
                        materialize(i, blob)
                return

        # Fallback ladder: plans numpy cannot express (string runs below
        # NUMPY_THRESHOLD or with hostile frames, VAX floats, float->int),
        # non-DCG modes, or a batch call that blew
        # up — loop the scalar converter, isolating failures per frame.
        self.metrics.inc("decode.batch.fallback", n)
        for i, payload in valid:
            self.metrics.inc("converted_decodes")
            try:
                data = self._run_converter(entry, wire_fmt, payload)
            except PbioError as exc:
                reject(exc)
                continue
            materialize(i, data)

    def _run_converter(self, entry: CacheEntry, wire_fmt: IOFormat, payload, dst=None):
        """Run a cached converter, translating content-level explosions
        (short string regions, missing NUL terminators, numpy buffer
        mismatches) into :class:`ConversionError`."""
        try:
            if dst is not None:
                return entry.converter(payload, dst)
            return entry.converter(payload)
        except _LEAKY_ERRORS as exc:
            raise ConversionError(
                f"malformed {wire_fmt.name!r} payload broke conversion: {exc}"
            ) from exc

    # -- internals ----------------------------------------------------------

    def _decode_native_timed(self, message) -> bytes:
        """decode_native with per-stage timings (metrics.timing_enabled)."""
        t0 = perf_counter()
        wire_fmt, payload = self.open_data(message)
        try:
            t1 = perf_counter()
            entry = self.entry_for(wire_fmt, self.native_for(wire_fmt))
            t2 = perf_counter()
            if entry.zero_copy:
                self.metrics.inc("zero_copy_decodes")
                out = bytes(payload)
            else:
                self.metrics.inc("converted_decodes")
                out = self._run_converter(entry, wire_fmt, payload)
        except PbioError:
            self.metrics.inc("decode.rejected")
            raise
        t3 = perf_counter()
        self.metrics.observe("decode.parse", t1 - t0)
        self.metrics.observe("decode.resolve", t2 - t1)
        self.metrics.observe("decode.convert", t3 - t2)
        return out

    def _decode_view_timed(self, message) -> RecordView:
        """decode_view with per-stage timings (metrics.timing_enabled)."""
        t0 = perf_counter()
        wire_fmt, payload = self.open_data(message)
        try:
            t1 = perf_counter()
            native = self.native_for(wire_fmt)
            entry = self.entry_for(wire_fmt, native)
            layout = self._layout_of(native)
            t2 = perf_counter()
            if entry.zero_copy:
                self.metrics.inc("zero_copy_decodes")
                view = RecordView(layout, payload)
            else:
                self.metrics.inc("converted_decodes")
                if entry.supports_dst:
                    buf = self.pool.acquire(entry.native_size)
                    view = RecordView(layout, self._run_converter(entry, wire_fmt, payload, buf))
                    self.pool.attach(view, buf)
                else:
                    view = RecordView(layout, self._run_converter(entry, wire_fmt, payload))
        except PbioError:
            self.metrics.inc("decode.rejected")
            raise
        t3 = perf_counter()
        self.metrics.observe("decode.parse", t1 - t0)
        self.metrics.observe("decode.resolve", t2 - t1)
        self.metrics.observe("decode.convert", t3 - t2)
        return view

    @staticmethod
    def _layout_of(native: IOFormat) -> StructLayout:
        if native.layout is None:  # pragma: no cover - expect() always sets it
            raise FormatError(f"expected format {native.name!r} has no local layout")
        return native.layout
