"""The decode pipeline: the one receive-side hot path.

Before this module existed, the header-parse -> remote-format lookup ->
expected-format resolution -> zero-copy-or-convert sequence was
re-implemented by ``IOContext``, the event channel, record filters, PBIO
files, the RPC server loop and the relay.  :class:`DecodePipeline` is now
the single implementation all of them consume, which is what makes the
path optimizable (batching, async, sharding) and observable (one
:class:`~repro.core.runtime.metrics.Metrics` namespace, one
:class:`~repro.core.runtime.cache.ConverterCache`) at all.

Stages
------

1. **parse** — validate the 16-byte header (:mod:`repro.core.encoder`);
2. **resolve** — look up the announced wire format in the registry and
   the receiver's expected native format by record name;
3. **dispatch** — consult the converter cache: zero-copy pairs return
   the payload (or a view over it) untouched; mismatched pairs run the
   cached converter, writing into a pooled destination buffer when the
   caller asked for a view.

Per-stage wall-clock timings are recorded when the pipeline's metrics
registry has ``timing_enabled`` set (off by default: the hot path pays
nothing for observability nobody reads).
"""

from __future__ import annotations

from time import perf_counter
from typing import Any

from repro.abi import MachineDescription, RecordView, StructLayout

from .. import encoder as enc
from ..conversion import InterpretedConverter, build_plan, generate_converter
from ..errors import FormatError, MessageError
from ..formats import IOFormat
from ..matching import match_formats
from ..registry import FormatRegistry
from .cache import CacheEntry, ConverterCache
from .metrics import Metrics
from .pool import BufferPool


class DecodePipeline:
    """Receive-side decode machinery shared by every PBIO endpoint.

    The pipeline does not own the registry or the expected-format table —
    it borrows the context's (they are live references, so ``expect()``
    calls are visible immediately).  The converter cache may be private
    or shared between any number of pipelines; the cache key includes the
    conversion mode and machine ABI, so sharing is always safe.
    """

    __slots__ = (
        "registry",
        "expected",
        "machine",
        "conversion",
        "cache",
        "metrics",
        "pool",
        "_memo",
    )

    def __init__(
        self,
        *,
        registry: FormatRegistry,
        expected: dict[str, IOFormat],
        machine: MachineDescription,
        conversion: str = "dcg",
        cache: ConverterCache | None = None,
        metrics: Metrics | None = None,
        pool: BufferPool | None = None,
    ) -> None:
        self.registry = registry
        self.expected = expected
        self.machine = machine
        self.conversion = conversion
        self.cache = cache if cache is not None else ConverterCache()
        self.metrics = metrics if metrics is not None else Metrics()
        self.pool = pool if pool is not None else BufferPool()
        # Lock-free per-pipeline front for the (possibly shared, locked)
        # cache: this pipeline's machine and conversion mode are fixed,
        # so (wire, native) fingerprints alone identify an entry.
        self._memo: dict[tuple[bytes, bytes], CacheEntry] = {}

    # -- stage 1+2: parse and resolve ---------------------------------------

    def open_data(self, message) -> tuple[IOFormat, memoryview]:
        """Validate a data message; return its wire format and payload."""
        msg_type, context_id, format_id, payload_len = enc.unpack_header(message)
        if msg_type != enc.MSG_DATA:
            raise MessageError("expected a data message")
        payload = memoryview(message)[enc.HEADER_SIZE :]
        if len(payload) != payload_len:
            raise MessageError(
                f"payload length mismatch: header says {payload_len}, got {len(payload)}"
            )
        wire_fmt = self.registry.remote_format(context_id, format_id)
        return wire_fmt, payload

    def native_for(self, wire_fmt: IOFormat) -> IOFormat:
        """The expected native format matching ``wire_fmt`` by name."""
        native = self.expected.get(wire_fmt.name)
        if native is None:
            raise FormatError(
                f"no expected format declared for {wire_fmt.name!r}; "
                f"call expect() or use reflection to inspect the format"
            )
        return native

    def absorb(self, message, context_id: int, format_id: int) -> None:
        """Register the format carried by an announcement message."""
        meta = memoryview(message)[enc.HEADER_SIZE :]
        self.registry.register_remote(context_id, format_id, IOFormat.from_meta_bytes(meta))

    # -- stage 3: converter resolution --------------------------------------

    def entry_for(self, wire_fmt: IOFormat, native: IOFormat) -> CacheEntry:
        """The cached conversion decision for one format pair.

        Mirrors the cache outcome into this pipeline's own metrics so
        per-context counters stay meaningful under a shared cache.
        """
        memo_key = (wire_fmt.fingerprint, native.fingerprint)
        entry = self._memo.get(memo_key)
        if entry is not None:
            self.metrics.inc("converter_cache_hits")
            self.cache.metrics.inc("converter_cache_hits")
            return entry
        entry, outcome = self.cache.resolve(
            wire_fmt, native, self.conversion, self.machine, self._build_entry
        )
        if outcome == "hit":
            self.metrics.inc("converter_cache_hits")
        elif outcome == "built":
            self.metrics.inc("converters_generated")
            self.metrics.add("generation_time_s", entry.generation_time_s)
        self._memo[memo_key] = entry
        return entry

    def set_cache(self, cache: ConverterCache) -> None:
        """Re-point at another (shared) cache, dropping the local front."""
        self.cache = cache
        self._memo.clear()

    def _build_entry(self, wire_fmt: IOFormat, native: IOFormat) -> CacheEntry:
        match = match_formats(wire_fmt, native)
        if match.zero_copy:
            return CacheEntry(
                zero_copy=True,
                converter=None,
                source=None,
                wire_name=wire_fmt.name,
                native_name=native.name,
                native_size=native.record_size,
                supports_dst=False,
            )
        plan = build_plan(wire_fmt, native, match)
        if self.conversion == "interpreted":
            converter = InterpretedConverter(plan)
            source = plan.describe()
            generation_time_s = 0.0
        else:
            generated = generate_converter(
                plan, backend="python" if self.conversion == "dcg" else "vcode"
            )
            converter = generated.convert
            source = generated.source
            generation_time_s = generated.generation_time_s
        return CacheEntry(
            zero_copy=False,
            converter=converter,
            source=source,
            wire_name=wire_fmt.name,
            native_name=native.name,
            native_size=native.record_size,
            supports_dst=not plan.has_strings,
            generation_time_s=generation_time_s,
        )

    # -- public decode entry points -----------------------------------------

    def decode_native(self, message) -> bytes:
        """Decode to record bytes in the pipeline's native layout."""
        if self.metrics.timing_enabled:
            return self._decode_native_timed(message)
        wire_fmt, payload = self.open_data(message)
        entry = self.entry_for(wire_fmt, self.native_for(wire_fmt))
        if entry.zero_copy:
            self.metrics.inc("zero_copy_decodes")
            return bytes(payload)
        self.metrics.inc("converted_decodes")
        return entry.converter(payload)

    def decode_view(self, message) -> RecordView:
        """Decode to a :class:`RecordView`.

        Zero-copy pairs view the *message buffer itself*; converted pairs
        write into a pooled destination buffer that is recycled only once
        the view (the sole owner callers see) is garbage collected.
        """
        if self.metrics.timing_enabled:
            return self._decode_view_timed(message)
        wire_fmt, payload = self.open_data(message)
        native = self.native_for(wire_fmt)
        entry = self.entry_for(wire_fmt, native)
        layout = self._layout_of(native)
        if entry.zero_copy:
            self.metrics.inc("zero_copy_decodes")
            return RecordView(layout, payload)
        self.metrics.inc("converted_decodes")
        if entry.supports_dst:
            buf = self.pool.acquire(entry.native_size)
            view = RecordView(layout, entry.converter(payload, buf))
            self.pool.attach(view, buf)
            return view
        return RecordView(layout, entry.converter(payload))

    def decode(self, message) -> dict[str, Any]:
        """Decode to a fully materialized value dict."""
        return self.decode_view(message).to_dict()

    def ingest(self, message) -> dict[str, Any] | None:
        """Process one message of either type.

        Announcements are absorbed into the registry (returns ``None``);
        data messages decode to a value dict.
        """
        msg_type, context_id, format_id, _ = enc.unpack_header(message)
        if msg_type == enc.MSG_FORMAT:
            self.absorb(message, context_id, format_id)
            return None
        return self.decode(message)

    # -- internals ----------------------------------------------------------

    def _decode_native_timed(self, message) -> bytes:
        """decode_native with per-stage timings (metrics.timing_enabled)."""
        t0 = perf_counter()
        wire_fmt, payload = self.open_data(message)
        t1 = perf_counter()
        entry = self.entry_for(wire_fmt, self.native_for(wire_fmt))
        t2 = perf_counter()
        if entry.zero_copy:
            self.metrics.inc("zero_copy_decodes")
            out = bytes(payload)
        else:
            self.metrics.inc("converted_decodes")
            out = entry.converter(payload)
        t3 = perf_counter()
        self.metrics.observe("decode.parse", t1 - t0)
        self.metrics.observe("decode.resolve", t2 - t1)
        self.metrics.observe("decode.convert", t3 - t2)
        return out

    def _decode_view_timed(self, message) -> RecordView:
        """decode_view with per-stage timings (metrics.timing_enabled)."""
        t0 = perf_counter()
        wire_fmt, payload = self.open_data(message)
        t1 = perf_counter()
        native = self.native_for(wire_fmt)
        entry = self.entry_for(wire_fmt, native)
        layout = self._layout_of(native)
        t2 = perf_counter()
        if entry.zero_copy:
            self.metrics.inc("zero_copy_decodes")
            view = RecordView(layout, payload)
        else:
            self.metrics.inc("converted_decodes")
            if entry.supports_dst:
                buf = self.pool.acquire(entry.native_size)
                view = RecordView(layout, entry.converter(payload, buf))
                self.pool.attach(view, buf)
            else:
                view = RecordView(layout, entry.converter(payload))
        t3 = perf_counter()
        self.metrics.observe("decode.parse", t1 - t0)
        self.metrics.observe("decode.resolve", t2 - t1)
        self.metrics.observe("decode.convert", t3 - t2)
        return view

    @staticmethod
    def _layout_of(native: IOFormat) -> StructLayout:
        if native.layout is None:  # pragma: no cover - expect() always sets it
            raise FormatError(f"expected format {native.name!r} has no local layout")
        return native.layout
