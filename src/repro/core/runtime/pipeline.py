"""The decode pipeline: the one receive-side hot path.

Before this module existed, the header-parse -> remote-format lookup ->
expected-format resolution -> zero-copy-or-convert sequence was
re-implemented by ``IOContext``, the event channel, record filters, PBIO
files, the RPC server loop and the relay.  :class:`DecodePipeline` is now
the single implementation all of them consume, which is what makes the
path optimizable (batching, async, sharding) and observable (one
:class:`~repro.core.runtime.metrics.Metrics` namespace, one
:class:`~repro.core.runtime.cache.ConverterCache`) at all.

Stages
------

1. **parse** — validate the 16-byte header (:mod:`repro.core.encoder`);
2. **resolve** — look up the announced wire format in the registry and
   the receiver's expected native format by record name;
3. **dispatch** — consult the converter cache: zero-copy pairs return
   the payload (or a view over it) untouched; mismatched pairs run the
   cached converter, writing into a pooled destination buffer when the
   caller asked for a view.

Per-stage wall-clock timings are recorded when the pipeline's metrics
registry has ``timing_enabled`` set (off by default: the hot path pays
nothing for observability nobody reads).
"""

from __future__ import annotations

from time import perf_counter
from typing import Any

from repro.abi import MachineDescription, RecordView, StructLayout

import struct

from .. import encoder as enc
from ..conversion import InterpretedConverter, build_plan, generate_converter
from ..errors import (
    ConversionError,
    FormatError,
    LimitError,
    MessageError,
    PbioError,
    TokenResolutionError,
)
from ..formats import IOFormat
from ..matching import match_formats
from ..registry import FormatRegistry
from ..safety import DEFAULT_LIMITS, DecodeLimits
from .cache import CacheEntry, ConverterCache
from .metrics import Metrics
from .pool import BufferPool

#: Stdlib/numpy exceptions a converter or code generator may leak when
#: fed structurally valid but content-hostile input; decode paths wrap
#: them into the PbioError taxonomy so callers see exactly one family.
_LEAKY_ERRORS = (struct.error, ValueError, IndexError, KeyError, OverflowError, UnicodeDecodeError)


class DecodePipeline:
    """Receive-side decode machinery shared by every PBIO endpoint.

    The pipeline does not own the registry or the expected-format table —
    it borrows the context's (they are live references, so ``expect()``
    calls are visible immediately).  The converter cache may be private
    or shared between any number of pipelines; the cache key includes the
    conversion mode and machine ABI, so sharing is always safe.
    """

    __slots__ = (
        "registry",
        "expected",
        "machine",
        "conversion",
        "cache",
        "metrics",
        "pool",
        "limits",
        "resolver",
        "_max_msg",
        "_memo",
    )

    def __init__(
        self,
        *,
        registry: FormatRegistry,
        expected: dict[str, IOFormat],
        machine: MachineDescription,
        conversion: str = "dcg",
        cache: ConverterCache | None = None,
        metrics: Metrics | None = None,
        pool: BufferPool | None = None,
        limits: DecodeLimits | None = DEFAULT_LIMITS,
    ) -> None:
        self.registry = registry
        self.expected = expected
        self.machine = machine
        self.conversion = conversion
        self.limits = limits
        # Hoisted ceiling: the per-message hot path pays one local load
        # and one compare, not two attribute chases.
        self._max_msg = limits.max_message_size if limits is not None else None
        if cache is None:
            cache = ConverterCache(
                max_entries=limits.max_cache_entries if limits is not None else None
            )
        self.cache = cache
        self.metrics = metrics if metrics is not None else Metrics()
        self.pool = pool if pool is not None else BufferPool()
        #: Fingerprint resolver for token-only announcements — typically
        #: a :meth:`repro.fmtserv.FormatService.resolve` bound method.
        #: ``None`` means this pipeline cannot absorb tokens by itself.
        self.resolver: Any = None
        # Lock-free per-pipeline front for the (possibly shared, locked)
        # cache: this pipeline's machine and conversion mode are fixed,
        # so (wire, native) fingerprints alone identify an entry.
        self._memo: dict[tuple[bytes, bytes], CacheEntry] = {}

    # -- stage 1+2: parse and resolve ---------------------------------------

    def open_data(self, message) -> tuple[IOFormat, memoryview]:
        """Validate a data message; return its wire format and payload.

        The first stop for untrusted bytes on every decode path: the
        header must parse, the message must fit the configured
        :class:`DecodeLimits`, the payload must match the header's
        declared length *and* the wire format's record size (string
        formats carry a variable region after the fixed record, so they
        may be longer — never shorter).  Failures raise the PbioError
        taxonomy and count as ``decode.rejected``.
        """
        try:
            if self._max_msg is not None and len(message) > self._max_msg:
                raise LimitError(
                    f"message of {len(message)} bytes exceeds max_message_size "
                    f"({self._max_msg})"
                )
            msg_type, context_id, format_id, payload_len = enc.unpack_header(message)
            if msg_type != enc.MSG_DATA:
                raise MessageError("expected a data message")
            payload = memoryview(message)[enc.HEADER_SIZE :]
            if len(payload) != payload_len:
                raise MessageError(
                    f"payload length mismatch: header says {payload_len}, got {len(payload)}"
                )
            wire_fmt = self.registry.remote_format(context_id, format_id)
            if payload_len != wire_fmt.record_size and (
                payload_len < wire_fmt.record_size or not wire_fmt.has_strings
            ):
                raise MessageError(
                    f"payload of {payload_len} bytes does not cover a "
                    f"{wire_fmt.record_size}-byte {wire_fmt.name!r} record"
                )
            return wire_fmt, payload
        except PbioError:
            self.metrics.inc("decode.rejected")
            raise

    def native_for(self, wire_fmt: IOFormat) -> IOFormat:
        """The expected native format matching ``wire_fmt`` by name."""
        native = self.expected.get(wire_fmt.name)
        if native is None:
            raise FormatError(
                f"no expected format declared for {wire_fmt.name!r}; "
                f"call expect() or use reflection to inspect the format"
            )
        return native

    def absorb(self, message, context_id: int, format_id: int) -> None:
        """Register the format carried by an announcement message.

        Validation order matters: the meta block is parsed and
        structurally validated (``from_meta_bytes`` under this
        pipeline's limits) *before* the per-peer format quota is
        consulted, and the quota only applies to genuinely new
        (context, id) pairs — benign re-announcements never trip it.
        """
        try:
            meta = memoryview(message)[enc.HEADER_SIZE :]
            declared = enc.unpack_header(message)[3]
            if len(meta) != declared:
                raise MessageError(
                    f"meta payload length mismatch: header says {declared}, "
                    f"got {len(meta)}"
                )
            fmt = IOFormat.from_meta_bytes(meta, limits=self.limits)
            if (
                self.limits is not None
                and not self.registry.knows_remote(context_id, format_id)
                and self.registry.remote_count(context_id) >= self.limits.max_formats_per_peer
            ):
                raise LimitError(
                    f"peer {context_id:#010x} exceeded max_formats_per_peer "
                    f"({self.limits.max_formats_per_peer})"
                )
            self.registry.register_remote(context_id, format_id, fmt)
        except PbioError:
            self.metrics.inc("decode.rejected")
            raise

    def absorb_token(self, message) -> None:
        """Register a token-only announcement, resolving the fingerprint.

        Resolution goes through :attr:`resolver` (a format service's
        cache ladder).  Failure raises
        :class:`~repro.core.errors.TokenResolutionError`, counted as
        ``fmtserv.unresolved`` — deliberately *not* ``decode.rejected``:
        an unresolvable token is a cache/availability condition, not
        hostile input, and duplex endpoints recover from it by asking
        the announcer for inline meta.  Malformed token frames and quota
        violations are protocol damage as usual.
        """
        try:
            context_id, format_id, fingerprint, _token = enc.parse_token_message(message)
        except PbioError:
            self.metrics.inc("decode.rejected")
            raise
        if self.registry.knows_remote(context_id, format_id):
            known = self.registry.remote_format(context_id, format_id)
            if known.fingerprint == fingerprint:
                return  # benign re-announcement (replays, reconnects)
            self.metrics.inc("decode.rejected")
            raise FormatError(
                f"context {context_id:#010x} re-announced id {format_id} "
                f"with a different fingerprint"
            )
        fmt = self.resolver(fingerprint) if self.resolver is not None else None
        if fmt is None or fmt.fingerprint != fingerprint:
            self.metrics.inc("fmtserv.unresolved")
            raise TokenResolutionError(context_id, format_id, fingerprint)
        try:
            if (
                self.limits is not None
                and self.registry.remote_count(context_id)
                >= self.limits.max_formats_per_peer
            ):
                raise LimitError(
                    f"peer {context_id:#010x} exceeded max_formats_per_peer "
                    f"({self.limits.max_formats_per_peer})"
                )
            self.registry.register_remote(context_id, format_id, fmt)
        except PbioError:
            self.metrics.inc("decode.rejected")
            raise
        self.metrics.inc("fmtserv.tokens_absorbed")

    # -- stage 3: converter resolution --------------------------------------

    def entry_for(self, wire_fmt: IOFormat, native: IOFormat) -> CacheEntry:
        """The cached conversion decision for one format pair.

        Mirrors the cache outcome into this pipeline's own metrics so
        per-context counters stay meaningful under a shared cache.
        """
        memo_key = (wire_fmt.fingerprint, native.fingerprint)
        entry = self._memo.get(memo_key)
        if entry is not None:
            self.metrics.inc("converter_cache_hits")
            self.cache.metrics.inc("converter_cache_hits")
            return entry
        try:
            entry, outcome = self.cache.resolve(
                wire_fmt, native, self.conversion, self.machine, self._build_entry
            )
        except PbioError:
            raise
        except _LEAKY_ERRORS as exc:
            # A format pair that passed structural validation but still
            # broke converter generation: protocol damage, not a crash.
            raise FormatError(
                f"cannot build converter {wire_fmt.name!r} -> {native.name!r}: {exc}"
            ) from exc
        if outcome == "hit":
            self.metrics.inc("converter_cache_hits")
        elif outcome == "built":
            self.metrics.inc("converters_generated")
            self.metrics.add("generation_time_s", entry.generation_time_s)
        if (
            self.limits is not None
            and len(self._memo) >= self.limits.max_cache_entries
        ):
            self._memo.clear()  # keep the lock-free front bounded too
        self._memo[memo_key] = entry
        return entry

    def set_cache(self, cache: ConverterCache) -> None:
        """Re-point at another (shared) cache, dropping the local front."""
        self.cache = cache
        self._memo.clear()

    def _build_entry(self, wire_fmt: IOFormat, native: IOFormat) -> CacheEntry:
        match = match_formats(wire_fmt, native)
        if match.zero_copy:
            return CacheEntry(
                zero_copy=True,
                converter=None,
                source=None,
                wire_name=wire_fmt.name,
                native_name=native.name,
                native_size=native.record_size,
                supports_dst=False,
            )
        plan = build_plan(wire_fmt, native, match)
        if self.conversion == "interpreted":
            converter = InterpretedConverter(plan)
            source = plan.describe()
            generation_time_s = 0.0
        else:
            generated = generate_converter(
                plan, backend="python" if self.conversion == "dcg" else "vcode"
            )
            converter = generated.convert
            source = generated.source
            generation_time_s = generated.generation_time_s
        return CacheEntry(
            zero_copy=False,
            converter=converter,
            source=source,
            wire_name=wire_fmt.name,
            native_name=native.name,
            native_size=native.record_size,
            supports_dst=not plan.has_strings,
            generation_time_s=generation_time_s,
        )

    # -- public decode entry points -----------------------------------------

    def decode_native(self, message) -> bytes:
        """Decode to record bytes in the pipeline's native layout."""
        if self.metrics.timing_enabled:
            return self._decode_native_timed(message)
        wire_fmt, payload = self.open_data(message)
        try:
            entry = self.entry_for(wire_fmt, self.native_for(wire_fmt))
            if entry.zero_copy:
                self.metrics.inc("zero_copy_decodes")
                return bytes(payload)
            self.metrics.inc("converted_decodes")
            return self._run_converter(entry, wire_fmt, payload)
        except PbioError:
            self.metrics.inc("decode.rejected")
            raise

    def decode_view(self, message) -> RecordView:
        """Decode to a :class:`RecordView`.

        Zero-copy pairs view the *message buffer itself*; converted pairs
        write into a pooled destination buffer that is recycled only once
        the view (the sole owner callers see) is garbage collected.
        """
        if self.metrics.timing_enabled:
            return self._decode_view_timed(message)
        wire_fmt, payload = self.open_data(message)
        try:
            native = self.native_for(wire_fmt)
            entry = self.entry_for(wire_fmt, native)
            layout = self._layout_of(native)
            if entry.zero_copy:
                self.metrics.inc("zero_copy_decodes")
                return RecordView(layout, payload)
            self.metrics.inc("converted_decodes")
            if entry.supports_dst:
                buf = self.pool.acquire(entry.native_size)
                view = RecordView(layout, self._run_converter(entry, wire_fmt, payload, buf))
                self.pool.attach(view, buf)
                return view
            return RecordView(layout, self._run_converter(entry, wire_fmt, payload))
        except PbioError:
            self.metrics.inc("decode.rejected")
            raise

    def decode(self, message) -> dict[str, Any]:
        """Decode to a fully materialized value dict."""
        view = self.decode_view(message)
        try:
            return view.to_dict()
        except _LEAKY_ERRORS as exc:
            # Zero-copy string records materialize straight from the
            # message buffer; a bogus pointer or missing NUL lands here.
            self.metrics.inc("decode.rejected")
            raise ConversionError(f"malformed record content: {exc}") from exc

    def ingest(self, message) -> dict[str, Any] | None:
        """Process one message of either type.

        Announcements are absorbed into the registry (returns ``None``);
        data messages decode to a value dict.
        """
        try:
            if self._max_msg is not None and len(message) > self._max_msg:
                raise LimitError(
                    f"message of {len(message)} bytes exceeds max_message_size "
                    f"({self._max_msg})"
                )
            msg_type, context_id, format_id, _ = enc.unpack_header(message)
        except PbioError:
            self.metrics.inc("decode.rejected")
            raise
        if msg_type == enc.MSG_DATA:
            return self.decode(message)
        if msg_type == enc.MSG_FORMAT:
            self.absorb(message, context_id, format_id)
            return None
        if msg_type == enc.MSG_FORMAT_TOKEN:
            self.absorb_token(message)
            return None
        # MSG_FORMAT_REQUEST: requests are addressed to a *sender* and
        # handled by the negotiation layer; one reaching a bare decode
        # path is mis-delivery.
        self.metrics.inc("decode.rejected")
        raise MessageError("format request outside a negotiated stream")

    def _run_converter(self, entry: CacheEntry, wire_fmt: IOFormat, payload, dst=None):
        """Run a cached converter, translating content-level explosions
        (short string regions, missing NUL terminators, numpy buffer
        mismatches) into :class:`ConversionError`."""
        try:
            if dst is not None:
                return entry.converter(payload, dst)
            return entry.converter(payload)
        except _LEAKY_ERRORS as exc:
            raise ConversionError(
                f"malformed {wire_fmt.name!r} payload broke conversion: {exc}"
            ) from exc

    # -- internals ----------------------------------------------------------

    def _decode_native_timed(self, message) -> bytes:
        """decode_native with per-stage timings (metrics.timing_enabled)."""
        t0 = perf_counter()
        wire_fmt, payload = self.open_data(message)
        try:
            t1 = perf_counter()
            entry = self.entry_for(wire_fmt, self.native_for(wire_fmt))
            t2 = perf_counter()
            if entry.zero_copy:
                self.metrics.inc("zero_copy_decodes")
                out = bytes(payload)
            else:
                self.metrics.inc("converted_decodes")
                out = self._run_converter(entry, wire_fmt, payload)
        except PbioError:
            self.metrics.inc("decode.rejected")
            raise
        t3 = perf_counter()
        self.metrics.observe("decode.parse", t1 - t0)
        self.metrics.observe("decode.resolve", t2 - t1)
        self.metrics.observe("decode.convert", t3 - t2)
        return out

    def _decode_view_timed(self, message) -> RecordView:
        """decode_view with per-stage timings (metrics.timing_enabled)."""
        t0 = perf_counter()
        wire_fmt, payload = self.open_data(message)
        try:
            t1 = perf_counter()
            native = self.native_for(wire_fmt)
            entry = self.entry_for(wire_fmt, native)
            layout = self._layout_of(native)
            t2 = perf_counter()
            if entry.zero_copy:
                self.metrics.inc("zero_copy_decodes")
                view = RecordView(layout, payload)
            else:
                self.metrics.inc("converted_decodes")
                if entry.supports_dst:
                    buf = self.pool.acquire(entry.native_size)
                    view = RecordView(layout, self._run_converter(entry, wire_fmt, payload, buf))
                    self.pool.attach(view, buf)
                else:
                    view = RecordView(layout, self._run_converter(entry, wire_fmt, payload))
        except PbioError:
            self.metrics.inc("decode.rejected")
            raise
        t3 = perf_counter()
        self.metrics.observe("decode.parse", t1 - t0)
        self.metrics.observe("decode.resolve", t2 - t1)
        self.metrics.observe("decode.convert", t3 - t2)
        return view

    @staticmethod
    def _layout_of(native: IOFormat) -> StructLayout:
        if native.layout is None:  # pragma: no cover - expect() always sets it
            raise FormatError(f"expected format {native.name!r} has no local layout")
        return native.layout
