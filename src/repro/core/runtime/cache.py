"""Process-wide converter cache.

The paper's economics hinge on amortization: DCG pays a one-time
generation cost so that every subsequent record converts at near-memcpy
speed.  A converter is fully determined by four things — the wire
format's fingerprint, the expected native format's fingerprint, the
conversion strategy, and the receiving machine's ABI — so there is no
reason for N same-machine receivers to generate it N times.  This module
provides the shareable cache:

* each :class:`~repro.core.context.IOContext` gets a private
  ``ConverterCache`` by default (seed-compatible behavior);
* any number of contexts may be handed *one* cache (``cache=`` parameter,
  :meth:`IOContext.use_cache`, or ``EventChannel(cache=...)``), after
  which the first receiver to see a (wire, native) pair builds the
  converter and every other same-machine, same-mode receiver reuses it;
* :func:`shared_cache` returns the lazily-created process-global cache
  for code that wants sharing without plumbing an object around.

The key includes the machine ABI and conversion mode precisely so a
shared cache can serve heterogeneous subscriber sets: an x86 and a SPARC
receiver sharing one cache never see each other's entries.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable

from repro.abi import MachineDescription

from ..formats import IOFormat
from .metrics import Metrics


def machine_key(machine: MachineDescription) -> tuple:
    """The ABI identity a converter depends on.

    Layout (sizes/alignments) is already captured by the *native format
    fingerprint*; what remains is byte order, pointer width and float
    representation — plus the name to keep distinct-but-identical ABIs
    from sharing entries surprisingly.
    """
    return (machine.name, machine.byte_order, machine.pointer_size, machine.float_format)


CacheKey = tuple[bytes, bytes, str, tuple]


@dataclass(frozen=True)
class CacheEntry:
    """One resolved (wire, native, mode, machine) conversion decision."""

    zero_copy: bool
    converter: Callable | None  # None iff zero_copy
    source: str | None  # generated code / disassembly / plan description
    wire_name: str
    native_name: str
    native_size: int
    supports_dst: bool  # fixed-size plans can convert into a pooled buffer
    generation_time_s: float = 0.0
    #: Columnar N-records-at-once converter
    #: (:class:`~repro.core.conversion.BatchConverter`), cached alongside
    #: the scalar one; ``None`` when the plan is not liftable (strings,
    #: VAX floats, float->int) or the mode is not DCG — batch decodes
    #: then loop :attr:`converter`.
    batch: object | None = None
    #: Columnar converter for *string-bearing* plans
    #: (:class:`~repro.core.conversion.VarBatchConverter`): offset-table
    #: passes over the var-length tails.  ``None`` when the plan has no
    #: strings, is otherwise unliftable, or the mode is not DCG.
    var_batch: object | None = None


class ConverterCache:
    """Thread-safe cache of :class:`CacheEntry` objects.

    The cache keeps its own :class:`Metrics` (``converters_generated``,
    ``converter_cache_hits``, ``zero_copy_formats``, ``generation_time_s``)
    so sharing semantics are observable: N subscribers sharing one cache
    show exactly one generation however many of them decode.
    """

    def __init__(self, *, max_entries: int | None = None) -> None:
        """``max_entries`` caps the cache: inserting beyond it evicts the
        oldest entry (FIFO, counted as ``cache.evictions``).  ``None`` is
        unbounded — appropriate for trusted format populations; contexts
        decoding hostile peers get a quota from their
        :class:`~repro.core.safety.DecodeLimits`."""
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None)")
        self._entries: dict[CacheKey, CacheEntry] = {}
        #: Compiled filter/projection code, keyed (kind, spec, wire
        #: fingerprint) — see :meth:`resolve_compiled`.  Held apart from
        #: the converter entries: a predicate is not a converter, and the
        #: FIFO cap above must not evict tiny code objects to make room
        #: for them.
        self._compiled: dict[tuple, Callable] = {}
        self._lock = threading.RLock()
        self.metrics = Metrics()
        self.max_entries = max_entries

    @staticmethod
    def key_for(
        wire: IOFormat, native: IOFormat, conversion: str, machine: MachineDescription
    ) -> CacheKey:
        return (wire.fingerprint, native.fingerprint, conversion, machine_key(machine))

    def resolve(
        self,
        wire: IOFormat,
        native: IOFormat,
        conversion: str,
        machine: MachineDescription,
        build: Callable[[IOFormat, IOFormat], CacheEntry],
    ) -> tuple[CacheEntry, str]:
        """Look up or build the entry for one format pair.

        Returns ``(entry, outcome)`` where outcome is ``"hit"``,
        ``"built"`` (a converter was generated) or ``"zero_copy"`` (first
        resolution of a pair that needs no conversion).
        """
        key = self.key_for(wire, native, conversion, machine)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.metrics.inc("converter_cache_hits")
                return entry, "hit"
            entry = build(wire, native)
            if self.max_entries is not None and len(self._entries) >= self.max_entries:
                # dicts iterate in insertion order: drop the oldest entry.
                self._entries.pop(next(iter(self._entries)))
                self.metrics.inc("cache.evictions")
            self._entries[key] = entry
            if entry.converter is not None:
                self.metrics.inc("converters_generated")
                self.metrics.add("generation_time_s", entry.generation_time_s)
                return entry, "built"
            self.metrics.inc("zero_copy_formats")
            return entry, "zero_copy"

    def resolve_compiled(
        self,
        kind: str,
        spec,
        wire: IOFormat,
        build: Callable[[], Callable],
    ) -> tuple[Callable, bool]:
        """Look up or build one compiled filter/projection callable.

        The amortization argument for converters applies verbatim to DCG
        predicates: a compiled filter is fully determined by its
        expression and the wire format it reads, so N subscribers sharing
        one cache and one predicate compile it once.  ``kind``
        distinguishes the compilation families (``"filter"`` /
        ``"projection"``), ``spec`` is the expression string (or field
        tuple), and ``build`` compiles on miss.  Returns ``(callable,
        built)`` — ``built`` is True when this call did the compilation —
        and counts ``filters_compiled`` / ``filter_cache_hits`` in
        :attr:`metrics` so the sharing is observable.
        """
        key = (kind, spec, wire.fingerprint)
        with self._lock:
            fn = self._compiled.get(key)
            if fn is not None:
                self.metrics.inc("filter_cache_hits")
                return fn, False
            fn = build()
            self._compiled[key] = fn
            self.metrics.inc("filters_compiled")
            return fn, True

    def sources(
        self,
        format_name: str | None = None,
        *,
        conversion: str | None = None,
        machine: MachineDescription | None = None,
    ) -> dict[str, str]:
        """``{"<wire> -> <native>": source}`` for cached converters.

        Names are recorded at build time (the fingerprint -> name reverse
        map), so this is O(entries), not O(formats x converters).
        """
        mkey = machine_key(machine) if machine is not None else None
        out: dict[str, str] = {}
        with self._lock:
            for (_, _, mode, key_machine), entry in self._entries.items():
                if entry.source is None:
                    continue
                if conversion is not None and mode != conversion:
                    continue
                if mkey is not None and key_machine != mkey:
                    continue
                if format_name is not None and format_name not in (
                    entry.wire_name,
                    entry.native_name,
                ):
                    continue
                out[f"{entry.wire_name} -> {entry.native_name}"] = entry.source
        return out

    def entries(self) -> dict[CacheKey, CacheEntry]:
        with self._lock:
            return dict(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._compiled.clear()
            self.metrics.reset()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries


_shared_lock = threading.Lock()
_shared: ConverterCache | None = None


def shared_cache() -> ConverterCache:
    """The process-wide converter cache (created lazily, never reset by
    context teardown — pass it as ``IOContext(..., cache=shared_cache())``)."""
    global _shared
    with _shared_lock:
        if _shared is None:
            _shared = ConverterCache()
        return _shared


def reset_shared_cache() -> None:
    """Drop the process-wide cache (test isolation)."""
    global _shared
    with _shared_lock:
        _shared = None
