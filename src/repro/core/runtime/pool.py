"""Destination-buffer pooling and buffer leases for the conversion runtime.

Every converted decode needs a zeroed destination buffer of the native
record size (zeroed because ``ZERO`` ops — fields absent from the wire —
rely on it).  Steady-state receivers decode the same handful of record
sizes millions of times, so the allocator churn is pure waste.  The pool
recycles those buffers:

* :meth:`acquire` returns a ``bytearray`` of the requested size,
  reusing a released one when available (re-zeroed by a single
  ``memcpy`` from a cached zeros template — cheaper than allocator
  round-trips for large records; pass ``zero=False`` for receive
  buffers that will be overwritten anyway);
* :meth:`attach` ties a buffer's release to the lifetime of the object
  that exposes it (a :class:`~repro.abi.views.RecordView`): the buffer
  returns to the pool only when the view is garbage collected, so a
  pooled buffer is never re-issued while a live view still references
  it;
* :meth:`lease` wraps a buffer in a refcounted :class:`Lease` so *many*
  views can share one borrowed buffer (the lend-mode decode path slices
  a whole receive buffer into per-record views; the buffer returns when
  the last view dies, via a single ``weakref.finalize`` on the lease
  rather than one per view).

Debugging aid: set ``PBIO_POOL_GUARD=1`` and every buffer returned to
the pool is poisoned with ``0xA5`` bytes, so use-after-return bugs show
up as garbage reads instead of silent stale data.  The ``leaked``
metric counts leases that were finalized while explicit holds were
still outstanding.
"""

from __future__ import annotations

import os
import threading
import weakref
from typing import Callable

from .metrics import Metrics

POISON_BYTE = 0xA5


class _LeaseState:
    """Shared mutable state between a Lease and its finalizer.

    The finalizer must not hold a strong reference to the lease itself
    (that would keep it alive forever), so the refcount lives here.
    """

    __slots__ = ("holds", "fired")

    def __init__(self) -> None:
        self.holds = 0
        self.fired = False


def _fire(on_return: Callable[[], None], state: _LeaseState, metrics: Metrics | None) -> None:
    if state.fired:
        return
    state.fired = True
    if state.holds > 0 and metrics is not None:
        metrics.inc("leaked")
    on_return()


class Lease:
    """A refcounted handle over a borrowed buffer.

    Views produced by lend-mode decodes hold a *strong* reference to the
    lease; when the last one is garbage collected the lease dies and its
    single ``weakref.finalize`` returns the buffer.  Holders that are not
    plain Python objects (queues, C buffers) can pin the lease explicitly
    with :meth:`retain` / :meth:`release`.

    :meth:`close` returns the buffer immediately; doing so while holds
    are outstanding counts as a leak (the ``leaked`` metric) because any
    surviving views now alias recycled memory — ``PBIO_POOL_GUARD=1``
    makes such reads visibly poisoned.
    """

    __slots__ = ("_state", "_finalizer", "__weakref__")

    def __init__(self, on_return: Callable[[], None], *, metrics: Metrics | None = None) -> None:
        self._state = _LeaseState()
        self._finalizer = weakref.finalize(self, _fire, on_return, self._state, metrics)

    def retain(self) -> "Lease":
        self._state.holds += 1
        return self

    def release(self) -> None:
        state = self._state
        if state.holds <= 0:
            raise RuntimeError("Lease.release() without matching retain()")
        state.holds -= 1

    def close(self) -> None:
        """Return the buffer now instead of waiting for garbage collection."""
        self._finalizer()

    @property
    def alive(self) -> bool:
        return self._finalizer.alive

    @property
    def holds(self) -> int:
        return self._state.holds

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Lease(alive={self.alive}, holds={self.holds})"


class BufferPool:
    """A bounded free-list of conversion/receive buffers."""

    def __init__(self, max_per_size: int = 8) -> None:
        self._free: dict[int, list[bytearray]] = {}
        self._zeros: dict[int, bytes] = {}  # templates for fast re-zeroing
        self._lock = threading.Lock()
        self._max_per_size = max_per_size
        self._guard = os.environ.get("PBIO_POOL_GUARD", "") == "1"
        self.metrics = Metrics()

    def acquire(self, size: int, *, zero: bool = True) -> bytearray:
        """A buffer of ``size`` bytes (recycled when possible).

        ``zero=True`` (the default) hands back an all-zeros buffer, as
        conversion destinations require.  ``zero=False`` skips the
        re-zeroing memcpy for buffers that will be fully overwritten
        (receive buffers).
        """
        with self._lock:
            stack = self._free.get(size)
            if stack:
                buf = stack.pop()
                if zero:
                    buf[:] = self._zeros[size]
                self.metrics.inc("buffers_reused")
                return buf
        self.metrics.inc("buffers_allocated")
        return bytearray(size)

    def release(self, buf: bytearray) -> None:
        """Return a buffer to the pool (dropped when the size class is full)."""
        size = len(buf)
        if self._guard:
            buf[:] = bytes([POISON_BYTE]) * size
        with self._lock:
            stack = self._free.setdefault(size, [])
            if len(stack) < self._max_per_size:
                if size not in self._zeros:
                    self._zeros[size] = bytes(size)
                stack.append(buf)
                self.metrics.inc("buffers_returned")
            else:
                self.metrics.inc("buffers_dropped")

    def attach(self, owner, buf: bytearray) -> None:
        """Release ``buf`` when ``owner`` is garbage collected.

        The finalizer holds the only extra reference to ``buf``, so the
        buffer cannot be recycled while ``owner`` (and anything reading
        through it) is alive.
        """
        weakref.finalize(owner, self.release, buf)

    def lease(self, buf: bytearray) -> Lease:
        """A refcounted lease that returns ``buf`` to this pool on death."""
        return Lease(lambda: self.release(buf), metrics=self.metrics)

    @property
    def leaked(self) -> int:
        """Leases finalized while explicit holds were still outstanding."""
        return int(self.metrics.value("leaked"))

    def free_count(self, size: int | None = None) -> int:
        with self._lock:
            if size is not None:
                return len(self._free.get(size, ()))
            return sum(len(stack) for stack in self._free.values())
