"""Destination-buffer pooling for generated converters.

Every converted decode needs a zeroed destination buffer of the native
record size (zeroed because ``ZERO`` ops — fields absent from the wire —
rely on it).  Steady-state receivers decode the same handful of record
sizes millions of times, so the allocator churn is pure waste.  The pool
recycles those buffers:

* :meth:`acquire` returns a zeroed ``bytearray`` of the requested size,
  reusing a released one when available (re-zeroed by a single
  ``memcpy`` from a cached zeros template — cheaper than allocator
  round-trips for large records);
* :meth:`attach` ties a buffer's release to the lifetime of the object
  that exposes it (a :class:`~repro.abi.views.RecordView`): the buffer
  returns to the pool only when the view is garbage collected, so a
  pooled buffer is never re-issued while a live view still references
  it.

Buffers handed to callers as immutable ``bytes`` never come from the
pool — only the in-place ``convert(src, dst)`` path uses it.
"""

from __future__ import annotations

import threading
import weakref

from .metrics import Metrics


class BufferPool:
    """A bounded free-list of zeroed conversion destination buffers."""

    def __init__(self, max_per_size: int = 8) -> None:
        self._free: dict[int, list[bytearray]] = {}
        self._zeros: dict[int, bytes] = {}  # templates for fast re-zeroing
        self._lock = threading.Lock()
        self._max_per_size = max_per_size
        self.metrics = Metrics()

    def acquire(self, size: int) -> bytearray:
        """A zeroed buffer of ``size`` bytes (recycled when possible)."""
        with self._lock:
            stack = self._free.get(size)
            if stack:
                buf = stack.pop()
                buf[:] = self._zeros[size]
                self.metrics.inc("buffers_reused")
                return buf
        self.metrics.inc("buffers_allocated")
        return bytearray(size)

    def release(self, buf: bytearray) -> None:
        """Return a buffer to the pool (dropped when the size class is full)."""
        size = len(buf)
        with self._lock:
            stack = self._free.setdefault(size, [])
            if len(stack) < self._max_per_size:
                if size not in self._zeros:
                    self._zeros[size] = bytes(size)
                stack.append(buf)
                self.metrics.inc("buffers_returned")
            else:
                self.metrics.inc("buffers_dropped")

    def attach(self, owner, buf: bytearray) -> None:
        """Release ``buf`` when ``owner`` is garbage collected.

        The finalizer holds the only extra reference to ``buf``, so the
        buffer cannot be recycled while ``owner`` (and anything reading
        through it) is alive.
        """
        weakref.finalize(owner, self.release, buf)

    def free_count(self, size: int | None = None) -> int:
        with self._lock:
            if size is not None:
                return len(self._free.get(size, ()))
            return sum(len(stack) for stack in self._free.values())
