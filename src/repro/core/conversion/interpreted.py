"""The table-driven interpreted converter — PBIO's initial implementation.

Section 4.3: packages that marshal data themselves typically use "what
amounts to a table-driven interpreter ... making data movement and
conversion decisions based upon a description of the structure".  This
converter is that interpreter, in the "relatively heavily optimized" form
the paper describes for PBIO: per *record* it walks the op table and
dispatches dynamically per op, but each op executes as one batched
operation (a whole-field struct codec or slice move) rather than
element-by-element — and the receive buffer's data is moved exactly once,
with no intermediate packed buffer (unlike MPICH's unpack).

What it still pays, and what DCG (:mod:`.codegen`) eliminates, is the
per-record, per-op dynamic dispatch and the absence of cross-op
specialization (no numpy lowering, no compile-time constant folding of
offsets).
"""

from __future__ import annotations

import struct

from repro.abi.types import PrimKind, struct_code

from ..errors import ConversionError
from .plan import ConversionPlan, ConvOp, OpKind


class InterpretedConverter:
    """Executes a conversion plan by interpretation.

    Construction compiles no code: it builds the op table (whole-field
    struct codecs), the moral equivalent of the format-description tables
    a C interpreter walks.
    """

    def __init__(self, plan: ConversionPlan):
        self.plan = plan
        se, de = plan.src_endian, plan.dst_endian
        self._table = [
            ("vaxcvt", op, None, None)
            if op.kind is OpKind.CVT_FLOAT and plan.has_vax_floats
            else self._table_entry(op, se, de)
            for op in plan.ops
        ]
        self._dst_size = plan.native.record_size
        self._src_ptr = struct.Struct(se + ("Q" if _ptr_size(plan, "src") == 8 else "I"))
        self._dst_ptr = struct.Struct(de + ("Q" if _ptr_size(plan, "dst") == 8 else "I"))

    @staticmethod
    def _table_entry(op: ConvOp, se: str, de: str):
        kind = op.kind
        n = op.count
        if kind in (OpKind.COPY, OpKind.ZERO, OpKind.CHARS, OpKind.STRING):
            return (kind, op, None, None)
        if kind is OpKind.SWAP:
            code = struct_code(PrimKind.UNSIGNED, op.src_size)
            return (kind, op, struct.Struct(f"{se}{n}{code}"), struct.Struct(f"{de}{n}{code}"))
        if kind is OpKind.CVT_INT:
            sk = PrimKind.INTEGER if op.signed else PrimKind.UNSIGNED
            src = struct.Struct(f"{se}{n}{struct_code(sk, op.src_size)}")
            if op.dst_size > op.src_size:  # widening: values always fit
                dst = struct.Struct(f"{de}{n}{struct_code(sk, op.dst_size)}")
            else:  # narrowing: mask + pack unsigned (C truncation)
                dst = struct.Struct(f"{de}{n}{struct_code(PrimKind.UNSIGNED, op.dst_size)}")
            return (kind, op, src, dst)
        if kind is OpKind.CVT_FLOAT:
            return (kind, op, struct.Struct(f"{se}{n}{_f(op.src_size)}"), struct.Struct(f"{de}{n}{_f(op.dst_size)}"))
        if kind is OpKind.CVT_INT_FLOAT:
            sk = PrimKind.INTEGER if op.signed else PrimKind.UNSIGNED
            return (kind, op, struct.Struct(f"{se}{n}{struct_code(sk, op.src_size)}"), struct.Struct(f"{de}{n}{_f(op.dst_size)}"))
        if kind is OpKind.CVT_FLOAT_INT:
            return (kind, op, struct.Struct(f"{se}{n}{_f(op.src_size)}"), struct.Struct(f"{de}{n}{struct_code(PrimKind.UNSIGNED, op.dst_size)}"))
        raise ConversionError(f"unhandled op kind {kind}")  # pragma: no cover

    def __call__(self, src, dst=None) -> bytes:
        return self.convert(src, dst)

    def convert(self, src, dst=None) -> bytes:
        """Convert one wire record to native form.

        ``dst``, when supplied (buffer pooling), must be a zeroed
        bytearray of the native record size; it is filled in place and
        returned.  Plans with out-of-line strings produce variable-size
        output and always build a fresh buffer.
        """
        if self.plan.has_strings and not isinstance(src, (bytes, bytearray)):
            src = bytes(src)  # strings need bytes.index; else reuse the buffer
        owned = dst is None or self.plan.has_strings
        if owned:
            dst = bytearray(self._dst_size)
        tail: list[bytes] = []
        tail_len = self._dst_size
        for kind, op, a, b in self._table:
            if kind == "vaxcvt":
                # float format change: the interpreter calls the same
                # conversion subroutine the generated code would.
                from repro.abi.floats import convert_float_bytes

                dst[op.dst_off : op.dst_off + op.dst_size * op.count] = convert_float_bytes(
                    src,
                    op.src_off,
                    op.count,
                    op.src_size,
                    self.plan.src_float_format,
                    self.plan.src_endian,
                    op.dst_size,
                    self.plan.dst_float_format,
                    self.plan.dst_endian,
                )
            elif kind is OpKind.COPY:
                dst[op.dst_off : op.dst_off + op.dst_size] = src[op.src_off : op.src_off + op.src_size]
            elif kind is OpKind.SWAP or kind is OpKind.CVT_INT_FLOAT:
                b.pack_into(dst, op.dst_off, *a.unpack_from(src, op.src_off))
            elif kind is OpKind.CVT_FLOAT:
                if op.dst_size < op.src_size:  # narrowing: overflow -> inf, as in C
                    b.pack_into(dst, op.dst_off, *[_clamp_f32(v) for v in a.unpack_from(src, op.src_off)])
                else:
                    b.pack_into(dst, op.dst_off, *a.unpack_from(src, op.src_off))
            elif kind is OpKind.CVT_INT:
                if op.dst_size > op.src_size:
                    b.pack_into(dst, op.dst_off, *a.unpack_from(src, op.src_off))
                else:
                    mask = (1 << (8 * op.dst_size)) - 1
                    b.pack_into(dst, op.dst_off, *[v & mask for v in a.unpack_from(src, op.src_off)])
            elif kind is OpKind.CVT_FLOAT_INT:
                mask = (1 << (8 * op.dst_size)) - 1
                b.pack_into(dst, op.dst_off, *[int(v) & mask for v in a.unpack_from(src, op.src_off)])
            elif kind is OpKind.CHARS:
                m = min(op.src_size, op.dst_size)
                dst[op.dst_off : op.dst_off + m] = src[op.src_off : op.src_off + m]
            elif kind is OpKind.STRING:
                ptr = self._src_ptr.unpack_from(src, op.src_off)[0]
                if ptr:
                    end = src.index(0, ptr)
                    data = src[ptr : end + 1]
                    self._dst_ptr.pack_into(dst, op.dst_off, tail_len)
                    tail.append(bytes(data))
                    tail_len += len(data)
            else:  # OpKind.ZERO — fresh buffer is already zero
                pass
        if tail:
            return bytes(dst) + b"".join(tail)
        return bytes(dst) if owned else dst


def _f(size: int) -> str:
    return "f" if size == 4 else "d"


_F32_MAX = 3.4028234663852886e38


def _clamp_f32(value: float) -> float:
    if value > _F32_MAX:
        return float("inf")
    if value < -_F32_MAX:
        return float("-inf")
    return value


def _ptr_size(plan: ConversionPlan, side: str) -> int:
    fmt = plan.wire if side == "src" else plan.native
    for f in fmt.fields:
        if f.kind is PrimKind.STRING:
            return f.size
    return 4
