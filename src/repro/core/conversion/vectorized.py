"""NumPy helpers for bulk element conversion.

The DCG backend lowers long homogeneous element runs onto numpy: a single
``frombuffer -> byteswap/astype -> tobytes`` pipeline runs at C speed,
which is the Python-world equivalent of the tight native loops Vcode's
generated code achieves in the paper.

The struct/numpy crossover was measured on CI-class x86-64 hardware with
``benchmarks/bench_ablation_numpy_threshold.py`` (best-of-7, 2000 inner
iterations per point): for a ``double[n]`` byte-order swap the batched
struct pack/unpack wins up to n ~ 22 (n=16: struct 0.94 us vs numpy
1.11 us) and numpy wins from n ~ 24 on, staying flat (~1.1 us) out to
8192 elements while struct grows linearly; for an int32 -> int64
widening run struct's advantage stretches further, to n ~ 48 (n=32:
struct 0.94 us vs numpy 1.14 us), because numpy pays an extra temporary
for the cross-dtype astype.  The threshold below sits between the two
measured crossovers, so neither lowering is ever more than ~20% off its
op-specific optimum.
"""

from __future__ import annotations

import numpy as np

from repro.abi.types import NUMPY_CODES, PrimKind

#: Element counts at or above this use numpy in generated converters.
#: Measured crossover band: ~22 (8-byte swaps) to ~48 (widening int
#: converts); 32 splits it — see the module docstring for the numbers.
NUMPY_THRESHOLD = 32


def np_dtype(endian: str, kind: PrimKind, size: int) -> np.dtype | None:
    """numpy dtype for an element, or None if not representable."""
    code = NUMPY_CODES.get((kind, size))
    if code is None or code.startswith("S"):
        return None
    prefix = ">" if endian in (">", "big") else "<"
    return np.dtype(prefix + code)


def swap_run(src, src_off: int, count: int, dtype: np.dtype, out_dtype: np.dtype) -> bytes:
    """Byte-order conversion of a homogeneous run, vectorized."""
    arr = np.frombuffer(src, dtype=dtype, count=count, offset=src_off)
    return arr.astype(out_dtype).tobytes()


def convert_run(
    src,
    src_off: int,
    count: int,
    src_dtype: np.dtype,
    dst_dtype: np.dtype,
) -> bytes:
    """General size/kind conversion of a homogeneous run, vectorized.

    ``astype`` reproduces C conversion semantics: truncation on integer
    narrowing, sign extension on widening, saturation-free wraparound,
    inf on float narrowing overflow.
    """
    arr = np.frombuffer(src, dtype=src_dtype, count=count, offset=src_off)
    with np.errstate(over="ignore", invalid="ignore"):
        return arr.astype(dst_dtype).tobytes()
