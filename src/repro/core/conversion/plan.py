"""Conversion plans: the op list a converter executes or compiles.

A plan is derived once per (wire format, native format) pair from the
name-based :class:`~repro.core.matching.MatchResult`.  Each op moves one
field (or one coalesced run of fields) from its wire position/representation
to its native position/representation:

* ``COPY``   — byte-identical data, possibly relocated: a bulk move;
* ``SWAP``   — same element size, opposite byte order;
* ``CVT_INT`` / ``CVT_FLOAT`` — element size changes (e.g. 4-byte int to
  8-byte long, float to double), with any byte-order change folded in;
* ``CVT_INT_FLOAT`` / ``CVT_FLOAT_INT`` — cross-kind conversions;
* ``CHARS``  — character buffers (truncate/NUL-pad to the native length);
* ``STRING`` — out-of-line strings: copy data, rewrite the pointer;
* ``ZERO``   — expected field absent from the wire: default to zero.

Adjacent ``COPY`` ops whose source and destination advance in lockstep are
coalesced into single bulk moves (including any intervening padding, which
is equal on both sides by construction).  In the homogeneous-with-
appended-field case this collapses the whole plan to approximately one
``memcpy`` — the cost Figure 7 measures.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.abi import PrimKind

from ..errors import ConversionError
from ..formats import IOFormat
from ..matching import MatchResult, match_formats


class OpKind(enum.Enum):
    COPY = "copy"
    SWAP = "swap"
    CVT_INT = "cvt_int"
    CVT_FLOAT = "cvt_float"
    CVT_INT_FLOAT = "cvt_int_float"
    CVT_FLOAT_INT = "cvt_float_int"
    CHARS = "chars"
    STRING = "string"
    ZERO = "zero"


@dataclass(frozen=True)
class ConvOp:
    """One conversion operation.  For COPY/ZERO, sizes are byte lengths
    and ``count`` is 1; element ops carry per-element sizes and a count."""

    kind: OpKind
    dst_off: int
    src_off: int  # unused for ZERO
    dst_size: int  # element size (COPY/ZERO: total bytes)
    src_size: int
    count: int = 1
    signed: bool = True  # integer ops: signedness of the *target*

    @property
    def dst_end(self) -> int:
        if self.kind in (OpKind.COPY, OpKind.ZERO):
            return self.dst_off + self.dst_size
        return self.dst_off + self.dst_size * self.count

    @property
    def src_end(self) -> int:
        if self.kind in (OpKind.COPY, OpKind.ZERO):
            return self.src_off + self.src_size
        return self.src_off + self.src_size * self.count


@dataclass(frozen=True)
class ConversionPlan:
    """Ordered ops plus the metadata converters need."""

    wire: IOFormat
    native: IOFormat
    ops: tuple[ConvOp, ...]
    src_endian: str  # struct prefix of the wire format
    dst_endian: str
    has_strings: bool
    src_float_format: str = "ieee754"
    dst_float_format: str = "ieee754"

    @property
    def has_vax_floats(self) -> bool:
        return "vax" in (self.src_float_format, self.dst_float_format)

    @property
    def is_identity(self) -> bool:
        """True when the plan is a single full-record copy."""
        return (
            len(self.ops) == 1
            and self.ops[0].kind is OpKind.COPY
            and self.ops[0].dst_off == 0
            and self.ops[0].src_off == 0
            and self.ops[0].dst_size == self.native.record_size
        )

    def op_histogram(self) -> dict[str, int]:
        hist: dict[str, int] = {}
        for op in self.ops:
            hist[op.kind.value] = hist.get(op.kind.value, 0) + 1
        return hist

    def describe(self) -> str:
        lines = [f"plan {self.wire.name!r} -> {self.native.name!r} ({len(self.ops)} ops):"]
        for op in self.ops:
            lines.append(
                f"  {op.kind.value:14s} src@{op.src_off:<6d} -> dst@{op.dst_off:<6d} "
                f"elem {op.src_size}->{op.dst_size} x{op.count}"
            )
        return "\n".join(lines)


def build_plan(wire: IOFormat, native: IOFormat, match: MatchResult | None = None) -> ConversionPlan:
    """Derive the conversion plan for one wire/native format pair."""
    if match is None:
        match = match_formats(wire, native)
    same_order = wire.byte_order == native.byte_order
    ops: list[ConvOp] = []
    for m in sorted(match.matches, key=lambda m: m.target.offset):
        t = m.target
        s = m.source
        if s is None:
            ops.append(ConvOp(OpKind.ZERO, t.offset, 0, t.total_size, 0))
            continue
        t_kind, s_kind = t.kind, s.kind
        if t_kind is PrimKind.STRING or s_kind is PrimKind.STRING:
            if t_kind is not s_kind:
                raise ConversionError(f"field {t.name!r}: string/non-string mismatch")
            ops.append(ConvOp(OpKind.STRING, t.offset, s.offset, t.size, s.size))
            continue
        if t_kind is PrimKind.CHAR or s_kind is PrimKind.CHAR:
            if t_kind is not s_kind:
                raise ConversionError(f"field {t.name!r}: char/non-char mismatch")
            if s.count == t.count:
                ops.append(ConvOp(OpKind.COPY, t.offset, s.offset, t.count, s.count))
            else:
                ops.append(ConvOp(OpKind.CHARS, t.offset, s.offset, t.count, s.count))
            continue
        int_kinds = (PrimKind.INTEGER, PrimKind.UNSIGNED, PrimKind.BOOLEAN)
        t_int = t_kind in int_kinds
        s_int = s_kind in int_kinds
        if s.count != t.count and not (s_int and t_int) and not (not s_int and not t_int):
            raise ConversionError(f"field {t.name!r}: array length mismatch across kinds")
        count = min(s.count, t.count)
        # Extra target elements default to zero (buffer pre-zeroed);
        # extra source elements are ignored, like unexpected fields.
        if s_int and t_int:
            if s.size == t.size:
                if same_order or s.size == 1:
                    ops.append(ConvOp(OpKind.COPY, t.offset, s.offset, s.size * count, s.size * count))
                else:
                    ops.append(
                        ConvOp(OpKind.SWAP, t.offset, s.offset, t.size, s.size, count, t_kind is PrimKind.INTEGER)
                    )
            else:
                ops.append(
                    ConvOp(OpKind.CVT_INT, t.offset, s.offset, t.size, s.size, count, s_kind is PrimKind.INTEGER)
                )
        elif not s_int and not t_int:  # float -> float
            same_float_fmt = wire.float_format == native.float_format
            if not same_float_fmt:
                # format change (e.g. VAX F/D <-> IEEE): always a full
                # conversion, whatever the sizes and byte orders
                ops.append(ConvOp(OpKind.CVT_FLOAT, t.offset, s.offset, t.size, s.size, count))
            elif s.size == t.size and same_order:
                ops.append(ConvOp(OpKind.COPY, t.offset, s.offset, s.size * count, s.size * count))
            elif s.size == t.size:
                ops.append(ConvOp(OpKind.SWAP, t.offset, s.offset, t.size, s.size, count))
            else:
                ops.append(ConvOp(OpKind.CVT_FLOAT, t.offset, s.offset, t.size, s.size, count))
        elif s_int and not t_int:
            if native.float_format != "ieee754":
                raise ConversionError(
                    f"field {t.name!r}: integer-to-{native.float_format} float "
                    f"cross-kind conversion is not supported"
                )
            ops.append(
                ConvOp(OpKind.CVT_INT_FLOAT, t.offset, s.offset, t.size, s.size, count, s_kind is PrimKind.INTEGER)
            )
        else:  # float -> int
            if wire.float_format != "ieee754":
                raise ConversionError(
                    f"field {t.name!r}: {wire.float_format} float-to-integer "
                    f"cross-kind conversion is not supported"
                )
            ops.append(
                ConvOp(OpKind.CVT_FLOAT_INT, t.offset, s.offset, t.size, s.size, count, t_kind is PrimKind.INTEGER)
            )
    ops = _coalesce_copies(ops)
    return ConversionPlan(
        wire=wire,
        native=native,
        ops=tuple(ops),
        src_endian=">" if wire.byte_order == "big" else "<",
        dst_endian=">" if native.byte_order == "big" else "<",
        has_strings=any(op.kind is OpKind.STRING for op in ops),
        src_float_format=wire.float_format,
        dst_float_format=native.float_format,
    )


def _coalesce_copies(ops: list[ConvOp]) -> list[ConvOp]:
    """Merge adjacent COPY ops advancing in lockstep (gap included)."""
    out: list[ConvOp] = []
    for op in ops:
        if op.kind is OpKind.COPY and out and out[-1].kind is OpKind.COPY:
            prev = out[-1]
            dst_gap = op.dst_off - prev.dst_end
            src_gap = op.src_off - prev.src_end
            if dst_gap == src_gap and 0 <= dst_gap <= 64:
                merged_len = op.dst_end - prev.dst_off
                out[-1] = ConvOp(OpKind.COPY, prev.dst_off, prev.src_off, merged_len, merged_len)
                continue
        out.append(op)
    return out
