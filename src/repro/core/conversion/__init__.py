"""Receiver-side conversion: plans, the table-driven interpreter, and
dynamic code generation (Python and vcode backends)."""

from .plan import ConversionPlan, ConvOp, OpKind, build_plan
from .interpreted import InterpretedConverter
from .batch import (
    BatchConverter,
    VarBatchConverter,
    build_batch_converter,
    build_var_batch_converter,
)
from .codegen import (
    GeneratedConverter,
    generate_converter,
    generate_python_converter,
    generate_vcode_converter,
)
from .vectorized import NUMPY_THRESHOLD

__all__ = [
    "ConversionPlan",
    "ConvOp",
    "OpKind",
    "build_plan",
    "InterpretedConverter",
    "BatchConverter",
    "VarBatchConverter",
    "build_batch_converter",
    "build_var_batch_converter",
    "GeneratedConverter",
    "generate_converter",
    "generate_python_converter",
    "generate_vcode_converter",
    "NUMPY_THRESHOLD",
]
