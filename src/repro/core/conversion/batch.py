"""Columnar batch conversion: N same-format records in one pass.

The scalar DCG converter already amortizes per-*field* dispatch into
per-*run* operations; a stream of same-format records still pays one
Python call, one destination allocation and one op-loop per record.
:class:`BatchConverter` lifts the whole plan one axis higher: the N
concatenated payloads are viewed as a ``(n, src_size)`` uint8 matrix,
and every plan op becomes a strided *column* operation — a 2-D slice
copy for COPY/CHARS, a ``view(dtype).astype(dtype)`` for element runs —
so the per-record cost is pure C loop, whatever N is.

Byte-identity with the scalar converter is load-bearing (the batch
decode path must be indistinguishable from a per-message loop), so the
lifting is deliberately conservative:

* ``STRING`` plans (variable-size output) and VAX float plans are not
  expressible as fixed-stride columns — :func:`build_batch_converter`
  returns ``None`` and callers loop the scalar converter;
* ``CVT_FLOAT_INT`` is excluded even though numpy could express it: the
  scalar short-run lowering is ``int(v) & mask`` (raises on NaN/inf,
  truncates toward zero), while ``astype`` semantics for out-of-range
  floats are platform-defined — close enough to be tempting, different
  enough to break byte-identity on hostile input;
* everything else (COPY, CHARS, ZERO, SWAP, CVT_INT, CVT_FLOAT,
  CVT_INT_FLOAT) has provably identical struct/numpy semantics —
  ``test_shape_both_lowerings_agree`` in the threshold ablation and the
  batch property suite pin this down.

Column views are legal because a ``(n, src_size)`` slice ``[:, a:b]``
keeps the last axis contiguous (stride 1), which is all
``ndarray.view(dtype)`` requires; ``astype`` then handles the
byte-order/size/kind change for all rows at once.
"""

from __future__ import annotations

import numpy as np

from repro.abi import PrimKind

from .plan import ConversionPlan, OpKind
from .vectorized import np_dtype

_U8 = np.dtype(np.uint8)

#: Fixed-region size (bytes) above which :class:`VarBatchConverter`
#: gathers/scatters record heads with per-record memcpys instead of a
#: fancy-index pass — the ``(n, size)`` ``int64`` index matrix costs 8 B
#: per payload byte and loses to ``memcpy`` past a few hundred bytes
#: (measured ~4.5x at 2 KB heads on this container).
_LOOP_GATHER_MIN = 256

#: Fixed-region size above which the var-length columnar pass is not
#: built at all.  The scalar converter is itself numpy-vectorized per
#: record, so once the fixed head holds hundreds of elements its
#: dispatch overhead is amortized and the columnar pass's extra
#: gather/scatter of every head byte turns into pure loss (measured
#: break-even ~1.5 KB, 0.87x at 2 KB heads).
_VAR_BATCH_MAX_HEAD = 1024

#: Op kinds the columnar lifting expresses (see module docstring for
#: why CVT_FLOAT_INT and STRING are deliberately absent).
_LIFTABLE = frozenset(
    {
        OpKind.COPY,
        OpKind.CHARS,
        OpKind.ZERO,
        OpKind.SWAP,
        OpKind.CVT_INT,
        OpKind.CVT_FLOAT,
        OpKind.CVT_INT_FLOAT,
    }
)


class BatchConverter:
    """Converts N concatenated same-format payloads with strided numpy ops.

    Build via :func:`build_batch_converter` (which vets the plan); call
    :meth:`convert` with the concatenated source payloads.  The result
    is the concatenation of the N converted records — byte-identical to
    running the scalar converter N times and joining the outputs.
    """

    __slots__ = ("src_size", "dst_size", "_copies", "_elems")

    def __init__(self, plan: ConversionPlan, copies, elems):
        self.src_size = plan.wire.record_size
        self.dst_size = plan.native.record_size
        #: byte-column moves: (dst_lo, dst_hi, src_lo, src_hi)
        self._copies = copies
        #: element-column converts: (dst_lo, dst_hi, src_lo, src_hi, sdt, ddt)
        self._elems = elems

    def convert(self, concat, n: int) -> bytes:
        """Convert ``n`` records packed back to back in ``concat``.

        ``concat`` must be exactly ``n * src_size`` bytes (callers
        validate frame lengths before concatenating).
        """
        if n == 0:
            return b""
        src = np.frombuffer(concat, _U8).reshape(n, self.src_size)
        dst = np.zeros((n, self.dst_size), _U8)
        for d0, d1, s0, s1 in self._copies:
            dst[:, d0:d1] = src[:, s0:s1]
        with np.errstate(over="ignore", invalid="ignore"):
            for d0, d1, s0, s1, sdt, ddt in self._elems:
                dst[:, d0:d1] = (
                    src[:, s0:s1].view(sdt).astype(ddt).view(_U8)
                )
        return dst.tobytes()

    def convert_many(self, payloads) -> list[bytes]:
        """Convenience: convert a list of payloads, one output per input."""
        blob = self.convert(b"".join(bytes(p) for p in payloads), len(payloads))
        d = self.dst_size
        return [blob[i * d : (i + 1) * d] for i in range(len(payloads))]


class VarBatchConverter:
    """Columnar conversion for *string-bearing* plans (var-length output).

    The scalar converter's string lowering is a per-record Python loop:
    unpack the pointer, ``src.index(0, ptr)`` to find the NUL, append the
    segment to a tail list.  This class lifts all of it to offset-table
    passes over the concatenation of N payloads:

    1. gather the fixed regions into an ``(n, src_size)`` matrix and run
       the usual column ops;
    2. one pass builds the length/offset tables — pointers are read as
       unsigned columns, every NUL terminator is found with a single
       ``searchsorted`` against the sorted zero positions of the search
       buffer, and dst pointers are an exclusive cumulative sum of the
       segment lengths (exactly the scalar ``tail_len`` accumulator);
    3. one strided pass moves all tail bytes at once (ragged
       gather/scatter via ``repeat``/``cumsum`` index arithmetic).

    Records with small fixed regions are gathered with one fancy-index
    pass over the joined payloads.  Above ``_LOOP_GATHER_MIN`` fixed
    bytes that index matrix (8 B of ``int64`` per payload byte) costs
    more than it saves: the heads are instead memcpy'd row-by-row and
    only the var-length tails are joined, which also keeps the NUL scan
    off the fixed bytes (a float column full of 0.0 is all zero bytes).
    In tail-coordinate mode a live pointer into the fixed region (never
    produced by an encoder) punts to the scalar loop.

    Byte-identity with the scalar loop is preserved by *validating* in
    the same pass: a pointer outside its payload, or one whose first NUL
    at-or-after it falls outside the payload, is precisely the case where
    the scalar ``src.index`` raises — :meth:`convert_var` then returns
    ``None`` and the caller falls back to the scalar loop, which isolates
    the hostile frame per-record.
    """

    __slots__ = ("src_size", "dst_size", "_copies", "_elems", "_strings")

    def __init__(self, plan: ConversionPlan, copies, elems, strings):
        self.src_size = plan.wire.record_size
        self.dst_size = plan.native.record_size
        self._copies = copies
        self._elems = elems
        #: string ops in plan order: (dst_off, src_off, src ptr dtype,
        #: dst ptr dtype) — plan order is the scalar tail-append order.
        self._strings = strings

    def convert_var(self, payloads) -> list[memoryview] | None:
        """Convert ``payloads`` (one var-length record each); ``None`` if
        any record would make the scalar converter raise (caller falls
        back to the per-record loop, which isolates the bad frame).

        Returns zero-copy views into one freshly converted blob; callers
        that need owned bytes pay the memcpy themselves."""
        n = len(payloads)
        if n == 0:
            return []
        ssz, dsz = self.src_size, self.dst_size
        lens = np.fromiter(map(len, payloads), np.int64, count=n)
        if int(lens.min()) < ssz:
            return None
        loop_mode = ssz >= _LOOP_GATHER_MIN
        if loop_mode:
            # Heads row-by-row; only the tails are joined, so the NUL
            # scan never touches fixed bytes.  Segment coordinates are
            # tail-relative: live pointer floor is the fixed size.  The
            # copies go through raw memoryview slice assignment — per
            # record that is one wrap and two memcpys, several times
            # cheaper than ``np.frombuffer`` pairs.
            tlens = lens - ssz
            seg_limit = np.cumsum(tlens)
            seg_base = seg_limit - tlens
            src_flat = np.empty(n * ssz, _U8)
            src = src_flat.reshape(n, ssz)
            buf = np.empty(int(seg_limit[-1]), _U8)
            smv = src_flat.data
            tmv = buf.data
            o = b = 0
            for p in payloads:
                mv = memoryview(p)
                smv[o : o + ssz] = mv[:ssz]
                o += ssz
                if len(mv) > ssz:
                    e = b + len(mv) - ssz
                    tmv[b:e] = mv[ssz:]
                    b = e
            ptr_floor = ssz
        else:
            buf = np.frombuffer(b"".join(payloads), _U8)
            seg_limit = np.cumsum(lens)
            seg_base = seg_limit - lens
            src = buf[seg_base[:, None] + np.arange(ssz)]
            ptr_floor = 0

        dst = np.zeros((n, dsz), _U8)
        for d0, d1, s0, s1 in self._copies:
            dst[:, d0:d1] = src[:, s0:s1]
        with np.errstate(over="ignore", invalid="ignore"):
            for d0, d1, s0, s1, sdt, ddt in self._elems:
                dst[:, d0:d1] = src[:, s0:s1].view(sdt).astype(ddt).view(_U8)

        # -- pass 1: length/offset tables ------------------------------
        k = len(self._strings)
        ulens = lens.astype(np.uint64)
        rel = np.zeros((k, n), np.int64)
        live = np.zeros((k, n), bool)
        ok = np.ones((k, n), bool)
        for j, (_d0, s0, sdt, _ddt) in enumerate(self._strings):
            ptr = src[:, s0 : s0 + sdt.itemsize].view(sdt).reshape(n)
            lv = ptr != 0
            inb = ptr < ulens  # unsigned compare: huge pointers stay huge
            p64 = ptr.astype(np.int64)
            if ptr_floor:
                # wrapped/huge pointers went negative above; the floor
                # check also catches live pointers into the fixed head,
                # which tail coordinates cannot express
                inb &= p64 >= ptr_floor
            ok[j] = ~lv | inb
            r = p64 - ptr_floor
            r[~inb] = 0  # clamped; such records already failed `ok`
            rel[j] = r
            live[j] = lv
        absp = rel + seg_base[np.newaxis, :]
        zeros = np.flatnonzero(buf == 0)
        if zeros.size:
            pos = np.searchsorted(zeros, absp)
            found = pos < zeros.size
            end_abs = zeros[np.where(found, pos, 0)]
            ok &= ~live | (found & (end_abs < seg_limit[np.newaxis, :]))
        else:
            ok &= ~live
            end_abs = absp
        if not ok.all():
            return None
        seg_len = np.where(live, end_abs - absp + 1, 0)

        # dst pointer = native record size + tail bytes appended by the
        # *earlier* string ops of the same record (scalar tail_len).
        csum = np.cumsum(seg_len, axis=0)
        dst_ptr = np.where(live, dsz + csum - seg_len, 0)
        for j, (d0, _s0, _sdt, ddt) in enumerate(self._strings):
            w = ddt.itemsize
            dst[:, d0 : d0 + w] = dst_ptr[j].astype(ddt).view(_U8).reshape(n, w)

        # -- pass 2: one strided move of every tail byte ----------------
        tail_per_rec = seg_len.sum(axis=0)
        out_lens = dsz + tail_per_rec
        out_ends = np.cumsum(out_lens)
        out_starts = out_ends - out_lens
        out = np.empty(int(out_ends[-1]), _U8)
        starts_list = out_starts.tolist()
        total = int(tail_per_rec.sum())

        # Encoders append live segments back-to-back in op order, so a
        # well-formed record's segments tile its tail exactly: each live
        # pointer sits at the exclusive running sum of segment lengths
        # and every tail byte is referenced.  Then each tail is already
        # one contiguous, output-ordered run in ``buf`` and two memcpys
        # assemble the record — worth it once tails average a few dozen
        # bytes, where the per-byte repeat/arange index arithmetic below
        # (~25 ns/B here) loses to straight slice copies.
        contiguous = False
        if total >= 48 * n:
            # rel is tail-relative when ptr_floor == ssz, record-relative
            # when 0; the expected pointer is the exclusive running sum
            # of segment lengths in the same coordinates.
            expect = csum - seg_len + (ssz - ptr_floor)
            contiguous = bool((~live | (rel == expect)).all()) and bool(
                (tail_per_rec == lens - ssz).all()
            )
        blob = out.data
        dmv = dst.reshape(-1).data
        bmv = buf.data
        if contiguous:
            if not ptr_floor and dsz == ssz:
                # Framing unchanged (same record size, tails tile): the
                # joined input IS the output except for the heads — one
                # block memcpy, then re-scatter the converted heads.
                np.copyto(out, buf)
                out[out_starts[:, None] + np.arange(dsz)] = dst
                return [
                    blob[s : s + l] for s, l in zip(starts_list, out_lens.tolist())
                ]
            tail_at = (seg_base if ptr_floor else seg_base + ssz).tolist()
            d = 0
            for s, ts, tl in zip(starts_list, tail_at, tail_per_rec.tolist()):
                e = s + dsz
                blob[s:e] = dmv[d : d + dsz]
                d += dsz
                if tl:
                    blob[e : e + tl] = bmv[ts : ts + tl]
            return [blob[s : s + l] for s, l in zip(starts_list, out_lens.tolist())]

        if dsz >= _LOOP_GATHER_MIN:
            d = 0
            for s in starts_list:
                blob[s : s + dsz] = dmv[d : d + dsz]
                d += dsz
        else:
            out[out_starts[:, None] + np.arange(dsz)] = dst
        seg_l = seg_len.T.ravel()  # record-major: tails stay in record order
        if total:
            seg_s = absp.T.ravel()
            seg_id = np.repeat(np.arange(n * k), seg_l)
            seg_cum = np.cumsum(seg_l)
            within = np.arange(total) - np.repeat(seg_cum - seg_l, seg_l)
            tail_bytes = buf[seg_s[seg_id] + within]
            tail_cum = np.cumsum(tail_per_rec)
            tpos = np.repeat(out_starts + dsz, tail_per_rec) + (
                np.arange(total) - np.repeat(tail_cum - tail_per_rec, tail_per_rec)
            )
            out[tpos] = tail_bytes
        return [blob[s : s + l] for s, l in zip(starts_list, out_lens.tolist())]


def _op_dtypes(op, plan: ConversionPlan):
    """(src dtype, dst dtype) for one liftable element op, or None."""
    se, de = plan.src_endian, plan.dst_endian
    k = op.kind
    if k is OpKind.SWAP:
        # The scalar lowering swaps through unsigned codes whatever the
        # element kind — raw byte reversal, bit-pattern preserving.
        return (
            np_dtype(se, PrimKind.UNSIGNED, op.src_size),
            np_dtype(de, PrimKind.UNSIGNED, op.dst_size),
        )
    if k is OpKind.CVT_INT:
        kind = PrimKind.INTEGER if op.signed else PrimKind.UNSIGNED
        return (np_dtype(se, kind, op.src_size), np_dtype(de, kind, op.dst_size))
    if k is OpKind.CVT_FLOAT:
        return (
            np_dtype(se, PrimKind.FLOAT, op.src_size),
            np_dtype(de, PrimKind.FLOAT, op.dst_size),
        )
    if k is OpKind.CVT_INT_FLOAT:
        kind = PrimKind.INTEGER if op.signed else PrimKind.UNSIGNED
        return (
            np_dtype(se, kind, op.src_size),
            np_dtype(de, PrimKind.FLOAT, op.dst_size),
        )
    return None


def build_batch_converter(plan: ConversionPlan) -> BatchConverter | None:
    """A :class:`BatchConverter` for ``plan``, or ``None`` if the plan is
    not expressible as fixed-stride column operations (strings, VAX
    floats, float->int casts) — callers then loop the scalar converter."""
    if plan.has_strings or plan.has_vax_floats:
        return None
    copies: list[tuple[int, int, int, int]] = []
    elems: list[tuple] = []
    for op in plan.ops:
        if op.kind not in _LIFTABLE:
            return None
        if op.kind is OpKind.ZERO:
            continue  # destination matrix is freshly zeroed
        if op.kind is OpKind.COPY:
            copies.append((op.dst_off, op.dst_off + op.dst_size, op.src_off, op.src_off + op.src_size))
            continue
        if op.kind is OpKind.CHARS:
            m = min(op.src_size, op.dst_size)
            copies.append((op.dst_off, op.dst_off + m, op.src_off, op.src_off + m))
            continue
        dtypes = _op_dtypes(op, plan)
        if dtypes is None or dtypes[0] is None or dtypes[1] is None:
            return None
        sdt, ddt = dtypes
        elems.append(
            (
                op.dst_off,
                op.dst_off + op.dst_size * op.count,
                op.src_off,
                op.src_off + op.src_size * op.count,
                sdt,
                ddt,
            )
        )
    return BatchConverter(plan, tuple(copies), tuple(elems))


def build_var_batch_converter(plan: ConversionPlan) -> VarBatchConverter | None:
    """A :class:`VarBatchConverter` for a string-bearing ``plan``, or
    ``None`` when some *other* op in the plan is not liftable (VAX
    floats, float->int casts) — callers then loop the scalar converter."""
    if not plan.has_strings or plan.has_vax_floats:
        return None
    if plan.wire.record_size > _VAR_BATCH_MAX_HEAD:
        return None
    copies: list[tuple[int, int, int, int]] = []
    elems: list[tuple] = []
    strings: list[tuple] = []
    for op in plan.ops:
        if op.kind is OpKind.STRING:
            sdt = np_dtype(plan.src_endian, PrimKind.UNSIGNED, op.src_size)
            ddt = np_dtype(plan.dst_endian, PrimKind.UNSIGNED, op.dst_size)
            if sdt is None or ddt is None:
                return None
            strings.append((op.dst_off, op.src_off, sdt, ddt))
            continue
        if op.kind not in _LIFTABLE:
            return None
        if op.kind is OpKind.ZERO:
            continue
        if op.kind is OpKind.COPY:
            copies.append((op.dst_off, op.dst_off + op.dst_size, op.src_off, op.src_off + op.src_size))
            continue
        if op.kind is OpKind.CHARS:
            m = min(op.src_size, op.dst_size)
            copies.append((op.dst_off, op.dst_off + m, op.src_off, op.src_off + m))
            continue
        dtypes = _op_dtypes(op, plan)
        if dtypes is None or dtypes[0] is None or dtypes[1] is None:
            return None
        sdt, ddt = dtypes
        elems.append(
            (
                op.dst_off,
                op.dst_off + op.dst_size * op.count,
                op.src_off,
                op.src_off + op.src_size * op.count,
                sdt,
                ddt,
            )
        )
    return VarBatchConverter(plan, tuple(copies), tuple(elems), tuple(strings))
