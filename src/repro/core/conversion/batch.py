"""Columnar batch conversion: N same-format records in one pass.

The scalar DCG converter already amortizes per-*field* dispatch into
per-*run* operations; a stream of same-format records still pays one
Python call, one destination allocation and one op-loop per record.
:class:`BatchConverter` lifts the whole plan one axis higher: the N
concatenated payloads are viewed as a ``(n, src_size)`` uint8 matrix,
and every plan op becomes a strided *column* operation — a 2-D slice
copy for COPY/CHARS, a ``view(dtype).astype(dtype)`` for element runs —
so the per-record cost is pure C loop, whatever N is.

Byte-identity with the scalar converter is load-bearing (the batch
decode path must be indistinguishable from a per-message loop), so the
lifting is deliberately conservative:

* ``STRING`` plans (variable-size output) and VAX float plans are not
  expressible as fixed-stride columns — :func:`build_batch_converter`
  returns ``None`` and callers loop the scalar converter;
* ``CVT_FLOAT_INT`` is excluded even though numpy could express it: the
  scalar short-run lowering is ``int(v) & mask`` (raises on NaN/inf,
  truncates toward zero), while ``astype`` semantics for out-of-range
  floats are platform-defined — close enough to be tempting, different
  enough to break byte-identity on hostile input;
* everything else (COPY, CHARS, ZERO, SWAP, CVT_INT, CVT_FLOAT,
  CVT_INT_FLOAT) has provably identical struct/numpy semantics —
  ``test_shape_both_lowerings_agree`` in the threshold ablation and the
  batch property suite pin this down.

Column views are legal because a ``(n, src_size)`` slice ``[:, a:b]``
keeps the last axis contiguous (stride 1), which is all
``ndarray.view(dtype)`` requires; ``astype`` then handles the
byte-order/size/kind change for all rows at once.
"""

from __future__ import annotations

import numpy as np

from repro.abi import PrimKind

from .plan import ConversionPlan, OpKind
from .vectorized import np_dtype

_U8 = np.dtype(np.uint8)

#: Op kinds the columnar lifting expresses (see module docstring for
#: why CVT_FLOAT_INT and STRING are deliberately absent).
_LIFTABLE = frozenset(
    {
        OpKind.COPY,
        OpKind.CHARS,
        OpKind.ZERO,
        OpKind.SWAP,
        OpKind.CVT_INT,
        OpKind.CVT_FLOAT,
        OpKind.CVT_INT_FLOAT,
    }
)


class BatchConverter:
    """Converts N concatenated same-format payloads with strided numpy ops.

    Build via :func:`build_batch_converter` (which vets the plan); call
    :meth:`convert` with the concatenated source payloads.  The result
    is the concatenation of the N converted records — byte-identical to
    running the scalar converter N times and joining the outputs.
    """

    __slots__ = ("src_size", "dst_size", "_copies", "_elems")

    def __init__(self, plan: ConversionPlan, copies, elems):
        self.src_size = plan.wire.record_size
        self.dst_size = plan.native.record_size
        #: byte-column moves: (dst_lo, dst_hi, src_lo, src_hi)
        self._copies = copies
        #: element-column converts: (dst_lo, dst_hi, src_lo, src_hi, sdt, ddt)
        self._elems = elems

    def convert(self, concat, n: int) -> bytes:
        """Convert ``n`` records packed back to back in ``concat``.

        ``concat`` must be exactly ``n * src_size`` bytes (callers
        validate frame lengths before concatenating).
        """
        if n == 0:
            return b""
        src = np.frombuffer(concat, _U8).reshape(n, self.src_size)
        dst = np.zeros((n, self.dst_size), _U8)
        for d0, d1, s0, s1 in self._copies:
            dst[:, d0:d1] = src[:, s0:s1]
        with np.errstate(over="ignore", invalid="ignore"):
            for d0, d1, s0, s1, sdt, ddt in self._elems:
                dst[:, d0:d1] = (
                    src[:, s0:s1].view(sdt).astype(ddt).view(_U8)
                )
        return dst.tobytes()

    def convert_many(self, payloads) -> list[bytes]:
        """Convenience: convert a list of payloads, one output per input."""
        blob = self.convert(b"".join(bytes(p) for p in payloads), len(payloads))
        d = self.dst_size
        return [blob[i * d : (i + 1) * d] for i in range(len(payloads))]


def _op_dtypes(op, plan: ConversionPlan):
    """(src dtype, dst dtype) for one liftable element op, or None."""
    se, de = plan.src_endian, plan.dst_endian
    k = op.kind
    if k is OpKind.SWAP:
        # The scalar lowering swaps through unsigned codes whatever the
        # element kind — raw byte reversal, bit-pattern preserving.
        return (
            np_dtype(se, PrimKind.UNSIGNED, op.src_size),
            np_dtype(de, PrimKind.UNSIGNED, op.dst_size),
        )
    if k is OpKind.CVT_INT:
        kind = PrimKind.INTEGER if op.signed else PrimKind.UNSIGNED
        return (np_dtype(se, kind, op.src_size), np_dtype(de, kind, op.dst_size))
    if k is OpKind.CVT_FLOAT:
        return (
            np_dtype(se, PrimKind.FLOAT, op.src_size),
            np_dtype(de, PrimKind.FLOAT, op.dst_size),
        )
    if k is OpKind.CVT_INT_FLOAT:
        kind = PrimKind.INTEGER if op.signed else PrimKind.UNSIGNED
        return (
            np_dtype(se, kind, op.src_size),
            np_dtype(de, PrimKind.FLOAT, op.dst_size),
        )
    return None


def build_batch_converter(plan: ConversionPlan) -> BatchConverter | None:
    """A :class:`BatchConverter` for ``plan``, or ``None`` if the plan is
    not expressible as fixed-stride column operations (strings, VAX
    floats, float->int casts) — callers then loop the scalar converter."""
    if plan.has_strings or plan.has_vax_floats:
        return None
    copies: list[tuple[int, int, int, int]] = []
    elems: list[tuple] = []
    for op in plan.ops:
        if op.kind not in _LIFTABLE:
            return None
        if op.kind is OpKind.ZERO:
            continue  # destination matrix is freshly zeroed
        if op.kind is OpKind.COPY:
            copies.append((op.dst_off, op.dst_off + op.dst_size, op.src_off, op.src_off + op.src_size))
            continue
        if op.kind is OpKind.CHARS:
            m = min(op.src_size, op.dst_size)
            copies.append((op.dst_off, op.dst_off + m, op.src_off, op.src_off + m))
            continue
        dtypes = _op_dtypes(op, plan)
        if dtypes is None or dtypes[0] is None or dtypes[1] is None:
            return None
        sdt, ddt = dtypes
        elems.append(
            (
                op.dst_off,
                op.dst_off + op.dst_size * op.count,
                op.src_off,
                op.src_off + op.src_size * op.count,
                sdt,
                ddt,
            )
        )
    return BatchConverter(plan, tuple(copies), tuple(elems))
