"""Field matching between incoming wire formats and expected native formats.

"Correspondence between fields in incoming and expected records is
established by field name, with no weight placed on size or ordering in
the record" (Section 3).  This module computes that correspondence and
classifies what the conversion layer must do about each field:

* identical geometry and byte order -> candidate for zero-copy use;
* size / offset / byte-order discrepancy -> conversion op required;
* wire field with no expected counterpart -> ignored (type extension);
* expected field missing from the wire -> defaulted to zero.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.abi import PrimKind

from .errors import ConversionError
from .fields import WireField
from .formats import IOFormat

#: Kind pairs PBIO can convert between (beyond same-kind conversions).
_CONVERTIBLE: set[tuple[PrimKind, PrimKind]] = {
    (PrimKind.INTEGER, PrimKind.UNSIGNED),
    (PrimKind.UNSIGNED, PrimKind.INTEGER),
    (PrimKind.INTEGER, PrimKind.FLOAT),
    (PrimKind.FLOAT, PrimKind.INTEGER),
    (PrimKind.UNSIGNED, PrimKind.FLOAT),
    (PrimKind.FLOAT, PrimKind.UNSIGNED),
    (PrimKind.BOOLEAN, PrimKind.INTEGER),
    (PrimKind.INTEGER, PrimKind.BOOLEAN),
    (PrimKind.BOOLEAN, PrimKind.UNSIGNED),
    (PrimKind.UNSIGNED, PrimKind.BOOLEAN),
}


@dataclass(frozen=True)
class FieldMatch:
    """One expected (native) field and its wire-side source, if any."""

    target: WireField  # receiver's native field
    source: WireField | None  # matching wire field (None -> default)
    identical: bool  # byte-identical in place: same offset/size/kind

    @property
    def is_missing(self) -> bool:
        return self.source is None


@dataclass(frozen=True)
class MatchResult:
    """Complete correspondence between a wire format and a native format."""

    wire: IOFormat
    native: IOFormat
    matches: tuple[FieldMatch, ...]
    ignored_wire_fields: tuple[WireField, ...]  # unexpected fields (ignored)
    missing_names: tuple[str, ...]  # expected but absent (defaulted)
    zero_copy: bool  # receiver may reference the message buffer directly

    @property
    def mismatch_count(self) -> int:
        """Number of expected fields needing relocation or conversion —
        Section 4.4: overhead "varies proportionally with the extent of
        the mismatch"."""
        return sum(1 for m in self.matches if not m.identical)

    def describe(self) -> str:
        lines = [
            f"match {self.wire.name!r} (wire) -> {self.native.name!r} (native): "
            f"{'zero-copy' if self.zero_copy else f'{self.mismatch_count} field(s) need conversion'}"
        ]
        for m in self.matches:
            if m.source is None:
                lines.append(f"  {m.target.name}: MISSING -> defaulted to zero")
            elif m.identical:
                lines.append(f"  {m.target.name}: identical @ {m.target.offset}")
            else:
                lines.append(
                    f"  {m.target.name}: wire @{m.source.offset} ({m.source.kind.value} x{m.source.size}) "
                    f"-> native @{m.target.offset} ({m.target.kind.value} x{m.target.size})"
                )
        for f in self.ignored_wire_fields:
            lines.append(f"  {f.name}: unexpected wire field, ignored")
        return "\n".join(lines)


def _kinds_compatible(src: PrimKind, dst: PrimKind) -> bool:
    if src is dst:
        return True
    return (src, dst) in _CONVERTIBLE


def match_formats(wire: IOFormat, native: IOFormat) -> MatchResult:
    """Match ``wire`` (incoming) against ``native`` (expected), by name."""
    same_order = wire.byte_order == native.byte_order
    same_floats = wire.float_format == native.float_format
    matches: list[FieldMatch] = []
    matched_names: set[str] = set()
    zero_copy = same_order and wire.record_size >= native.record_size
    for target in native.fields:
        source = wire[target.name] if target.name in wire else None
        if source is None:
            matches.append(FieldMatch(target, None, identical=False))
            zero_copy = False
            continue
        matched_names.add(target.name)
        if not _kinds_compatible(source.kind, target.kind):
            raise ConversionError(
                f"field {target.name!r}: cannot convert wire kind "
                f"{source.kind.value!r} to expected kind {target.kind.value!r}"
            )
        identical = (
            source.kind is target.kind
            and source.size == target.size
            and source.count == target.count
            and source.offset == target.offset
            and (same_order or source.size == 1 or source.kind is PrimKind.CHAR)
            and (same_floats or source.kind is not PrimKind.FLOAT)
        )
        # Multi-byte identical placement still needs a swap when orders
        # differ, so it is not 'identical' unless orders agree.
        if not identical:
            zero_copy = False
        matches.append(FieldMatch(target, source, identical=identical))
    ignored = tuple(f for f in wire.fields if f.name not in matched_names)
    missing = tuple(m.target.name for m in matches if m.source is None)
    return MatchResult(
        wire=wire,
        native=native,
        matches=tuple(matches),
        ignored_wire_fields=ignored,
        missing_names=missing,
        zero_copy=zero_copy,
    )
