"""PbioConnection: an IOContext bound to a transport.

Handles the meta-information protocol transparently: the first time a
format travels over the connection its announcement precedes the data
message; the receiving side absorbs announcements and returns only data.
This is the convenience layer examples and integration tests use — the
benchmarks call the context primitives directly so the one-time costs can
be measured separately.
"""

from __future__ import annotations

from typing import Any

from repro.net.transport import Transport

from . import encoder as enc
from .context import FormatHandle, IOContext


class PbioConnection:
    """Duplex PBIO messaging over one transport endpoint."""

    def __init__(self, ctx: IOContext, transport: Transport):
        self.ctx = ctx
        self.transport = transport
        self._announced: set[int] = set()

    # -- sending ------------------------------------------------------------

    def send_native(self, handle: FormatHandle, native) -> None:
        """Send a record already in native binary form (NDR fast path)."""
        if handle.format_id not in self._announced:
            self.transport.send(self.ctx.announce(handle))
            self._announced.add(handle.format_id)
        self.transport.send_segments(self.ctx.encode_segments(handle, native))

    def send(self, handle: FormatHandle, record: dict[str, Any]) -> None:
        """Send a value dict (encodes to native form first)."""
        self.send_native(handle, handle.codec.encode(record))

    # -- receiving ------------------------------------------------------------

    def recv_message(self) -> bytes:
        """Receive the next *data* message, absorbing announcements."""
        while True:
            message = self.transport.recv()
            if enc.try_message_type(message) == enc.MSG_FORMAT:
                self.ctx.receive(message)
                continue
            return message

    def recv(self) -> dict[str, Any]:
        """Receive and decode the next record to a dict."""
        return self.ctx.decode(self.recv_message())

    def recv_view(self):
        """Receive and decode the next record to a (possibly zero-copy)
        :class:`~repro.abi.views.RecordView`."""
        return self.ctx.decode_view(self.recv_message())

    def close(self) -> None:
        self.transport.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
