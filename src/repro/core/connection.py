"""PbioConnection: an IOContext bound to a transport.

Handles the meta-information protocol transparently: the first time a
format travels over the connection its announcement precedes the data
message; the receiving side absorbs announcements and returns only data.
This is the convenience layer examples and integration tests use — the
benchmarks call the context primitives directly so the one-time costs can
be measured separately.

With a format service attached to the sending context
(:meth:`IOContext.use_format_service`), announcements shrink to 28-byte
``(fingerprint, token)`` messages; the receiving side resolves tokens
through its own service's cache ladder, and when it cannot — server
down, cold cache — the connection runs the
:mod:`~repro.core.negotiation` recovery dance: a ``MSG_FORMAT_REQUEST``
travels back, data messages of the unresolved format are held (never
dropped), and the sender answers with classic inline meta.  Everything
degrades to the pre-service wire protocol; nothing ever depends on the
format server being up.

Announcement state is keyed by *live link identity* — transport token
plus reconnect generation — so a re-dialled transport is re-announced
to rather than silently assumed to remember formats the dead link heard
(see :func:`~repro.core.negotiation.link_key`).
"""

from __future__ import annotations

from typing import Any

from repro.net.transport import Transport

from . import encoder as enc
from .context import FormatHandle, IOContext
from .negotiation import Announcer, InboundNegotiator


class PbioConnection:
    """Duplex PBIO messaging over one transport endpoint."""

    def __init__(self, ctx: IOContext, transport: Transport):
        self.ctx = ctx
        self.transport = transport
        self._announcer = Announcer(ctx)
        # Late-bound send: `self.transport` may be swapped for a
        # re-dialled replacement, and back-channel traffic must follow.
        self._negotiator = InboundNegotiator(ctx, lambda data: self.transport.send(data))

    # -- sending ------------------------------------------------------------

    def send_native(self, handle: FormatHandle, native) -> None:
        """Send a record already in native binary form (NDR fast path)."""
        # Answer any meta requests the peer has queued before pushing
        # more data at it (keeps the recovery dance converging even when
        # this side never calls recv).
        self._negotiator.pump(self.transport)
        self._announcer.ensure_announced(self.transport, handle)
        self.transport.send_segments(self.ctx.encode_segments(handle, native))

    def send(self, handle: FormatHandle, record: dict[str, Any]) -> None:
        """Send a value dict (encodes to native form first)."""
        self.send_native(handle, handle.codec.encode(record))

    def send_batch_native(self, handle: FormatHandle, natives) -> None:
        """Send many native-form records as one vectored transport burst.

        The announcement (when still owed to this link) travels in the
        same burst, ahead of the data frames; on a socket transport the
        whole batch is a handful of ``sendmsg`` calls instead of N
        ``sendall`` round trips through the kernel.
        """
        self._negotiator.pump(self.transport)
        frames = self._announcer.pending_announcements(self.transport, handle)
        cid, fid = self.ctx.context_id, handle.format_id
        frames.extend(enc.encode_data_message(cid, fid, n) for n in natives)
        self.transport.send_many(frames)

    def send_batch(self, handle: FormatHandle, records) -> None:
        """Send many value dicts as one vectored transport burst."""
        codec = handle.codec
        self.send_batch_native(handle, [codec.encode(r) for r in records])

    # -- receiving ------------------------------------------------------------

    def recv_message(self) -> bytes:
        """Receive the next *data* message, absorbing announcements.

        Token announcements that cannot be resolved locally trigger the
        inline-recovery protocol transparently; messages of a format
        whose meta is still in flight are held and returned (in order)
        once it arrives.
        """
        message, _ = self._recv_parsed()
        return message

    def _recv_parsed(self) -> tuple[bytes, tuple | None]:
        """Next data message plus its already-parsed header (when the
        steady-state fast path produced one — threading it into the
        pipeline makes each frame's header validate exactly once)."""
        message = self._negotiator.next_ready()
        header = None
        while message is None:
            message, header = self._negotiator.filter_parsed(self.transport.recv())
        return message, header

    def recv(self) -> dict[str, Any]:
        """Receive and decode the next record to a dict."""
        message, header = self._recv_parsed()
        return self.ctx.pipeline.decode(message, header=header)

    def recv_view(self):
        """Receive and decode the next record to a (possibly zero-copy)
        :class:`~repro.abi.views.RecordView`."""
        message, header = self._recv_parsed()
        return self.ctx.pipeline.decode_view(message, header=header)

    def recv_batch(
        self, max_frames: int = 0, *, on_error: str = "raise", lend: bool = False
    ) -> list:
        """Receive a burst of records in one pass.

        Blocks for the first frame, then drains everything the transport
        already has buffered (``recv_many``), runs announcements through
        the negotiator, and decodes the resulting data messages with the
        batch pipeline — consecutive same-format frames share one
        columnar conversion.  Returns the decoded dicts in arrival order
        (``on_error="skip"`` leaves a ``None`` per rejected frame).

        ``lend=True`` returns leased :class:`~repro.abi.views.RecordView`
        objects instead of dicts: homogeneous data frames are decoded as
        views *directly into the transport's receive buffer*
        (``recv_many_leased``) — zero payload copies end to end.  The
        views hold the buffer lease; call ``view.detach()`` before
        storing one past the processing loop.  Control frames and
        sequenced/held frames are copied out as usual — correctness never
        depends on the fast path.
        """
        messages: list = []

        def drain_ready() -> None:
            while max_frames <= 0 or len(messages) < max_frames:
                m = self._negotiator.next_ready()
                if m is None:
                    return
                messages.append(m)

        drain_ready()
        lease = None
        while not messages:
            if lend:
                frames, lease = self.transport.recv_many_leased(max_frames)
                for frame in frames:
                    header = enc.try_unpack_header(frame)
                    if (
                        header is not None
                        and header[0] == enc.MSG_DATA
                        and not self._negotiator.unresolved
                    ):
                        # Steady state: a data frame with nothing pending
                        # bypasses the negotiator and stays a borrowed
                        # view.  Everything else (announcements, seq
                        # frames, held-format data) is copied and takes
                        # the ordinary path.
                        messages.append(frame)
                    else:
                        self._negotiator.offer(bytes(frame), header=header)
            else:
                for frame in self.transport.recv_many(max_frames):
                    self._negotiator.offer(frame)
            drain_ready()
        return self.ctx.pipeline.decode_batch(
            messages, on_error=on_error, lend=lend, lease=lease
        )

    def poll(self) -> None:
        """Drain frames available right now without blocking.

        Absorbs announcements, answers the peer's meta requests, and
        queues any data messages for the next :meth:`recv`.  Useful for
        send-mostly endpoints on non-blocking transports.
        """
        self._negotiator.pump(self.transport)

    def close(self) -> None:
        self.transport.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
