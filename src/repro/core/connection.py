"""PbioConnection: an IOContext bound to a transport.

Handles the meta-information protocol transparently: the first time a
format travels over the connection its announcement precedes the data
message; the receiving side absorbs announcements and returns only data.
This is the convenience layer examples and integration tests use — the
benchmarks call the context primitives directly so the one-time costs can
be measured separately.

With a format service attached to the sending context
(:meth:`IOContext.use_format_service`), announcements shrink to 28-byte
``(fingerprint, token)`` messages; the receiving side resolves tokens
through its own service's cache ladder, and when it cannot — server
down, cold cache — the connection runs the
:mod:`~repro.core.negotiation` recovery dance: a ``MSG_FORMAT_REQUEST``
travels back, data messages of the unresolved format are held (never
dropped), and the sender answers with classic inline meta.  Everything
degrades to the pre-service wire protocol; nothing ever depends on the
format server being up.

Announcement state is keyed by *live link identity* — transport token
plus reconnect generation — so a re-dialled transport is re-announced
to rather than silently assumed to remember formats the dead link heard
(see :func:`~repro.core.negotiation.link_key`).
"""

from __future__ import annotations

from typing import Any

from repro.net.transport import Transport

from .context import FormatHandle, IOContext
from .negotiation import Announcer, InboundNegotiator


class PbioConnection:
    """Duplex PBIO messaging over one transport endpoint."""

    def __init__(self, ctx: IOContext, transport: Transport):
        self.ctx = ctx
        self.transport = transport
        self._announcer = Announcer(ctx)
        # Late-bound send: `self.transport` may be swapped for a
        # re-dialled replacement, and back-channel traffic must follow.
        self._negotiator = InboundNegotiator(ctx, lambda data: self.transport.send(data))

    # -- sending ------------------------------------------------------------

    def send_native(self, handle: FormatHandle, native) -> None:
        """Send a record already in native binary form (NDR fast path)."""
        # Answer any meta requests the peer has queued before pushing
        # more data at it (keeps the recovery dance converging even when
        # this side never calls recv).
        self._negotiator.pump(self.transport)
        self._announcer.ensure_announced(self.transport, handle)
        self.transport.send_segments(self.ctx.encode_segments(handle, native))

    def send(self, handle: FormatHandle, record: dict[str, Any]) -> None:
        """Send a value dict (encodes to native form first)."""
        self.send_native(handle, handle.codec.encode(record))

    # -- receiving ------------------------------------------------------------

    def recv_message(self) -> bytes:
        """Receive the next *data* message, absorbing announcements.

        Token announcements that cannot be resolved locally trigger the
        inline-recovery protocol transparently; messages of a format
        whose meta is still in flight are held and returned (in order)
        once it arrives.
        """
        message = self._negotiator.next_ready()
        while message is None:
            message = self._negotiator.filter(self.transport.recv())
        return message

    def recv(self) -> dict[str, Any]:
        """Receive and decode the next record to a dict."""
        return self.ctx.decode(self.recv_message())

    def recv_view(self):
        """Receive and decode the next record to a (possibly zero-copy)
        :class:`~repro.abi.views.RecordView`."""
        return self.ctx.decode_view(self.recv_message())

    def poll(self) -> None:
        """Drain frames available right now without blocking.

        Absorbs announcements, answers the peer's meta requests, and
        queues any data messages for the next :meth:`recv`.  Useful for
        send-mostly endpoints on non-blocking transports.
        """
        self._negotiator.pump(self.transport)

    def close(self) -> None:
        self.transport.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
