"""PBIO as a :class:`~repro.wire.common.WireSystem` — the adapter the
comparative benchmarks use to treat PBIO uniformly with MPI/XML/IIOP/XDR.

``bind`` performs the one-time work (format registration and the meta-
information exchange, plus converter generation on first decode), so the
bound ``encode``/``decode`` measure steady-state per-message cost exactly
as the paper's figures do.
"""

from __future__ import annotations

from repro.abi import StructLayout
from repro.wire.common import BoundFormat, WireSystem

from .context import IOContext


class PbioWire(WireSystem):
    """NDR + receiver-side conversion; ``conversion`` picks the strategy
    ("dcg", "interpreted", or "vcode")."""

    def __init__(self, conversion: str = "dcg"):
        self.conversion = conversion
        self.name = "PBIO" if conversion == "dcg" else f"PBIO-{conversion}"

    def bind(self, src_layout: StructLayout, dst_layout: StructLayout) -> "BoundPbio":
        return BoundPbio(src_layout, dst_layout, self.conversion)


class BoundPbio(BoundFormat):
    def __init__(self, src_layout: StructLayout, dst_layout: StructLayout, conversion: str):
        self.system = "PBIO" if conversion == "dcg" else f"PBIO-{conversion}"
        self.sender = IOContext(src_layout.machine, conversion=conversion)
        self.receiver = IOContext(dst_layout.machine, conversion=conversion)
        self.handle = self.sender.register_format(src_layout.schema)
        self.receiver.expect(dst_layout.schema)
        # One-time meta-information exchange (bind-time, like MPI's commit).
        self.receiver.receive(self.sender.announce(self.handle))

    def encode(self, native) -> bytes:
        return self.sender.encode_native(self.handle, native)

    def encode_segments(self, native) -> list:
        """The true NDR sender path: header + caller's buffer, no copy."""
        return self.sender.encode_segments(self.handle, native)

    def decode(self, wire) -> bytes:
        return self.receiver.decode_native(wire)

    def decode_view(self, wire):
        return self.receiver.decode_view(wire)
